"""Ongoing capacity management across the paper's Figure 1 timescales.

The framework pieces (translation, placement, failure planning) answer
one planning question at one point in time. Operating a pool is a loop:

* **medium term** (weeks to months): re-run the consolidation on a
  sliding window of recent history, adjusting assignments as demand
  drifts — and pay attention to *migrations*, because every workload
  move disrupts an application;
* **long term**: extrapolate demand growth and find the horizon at
  which the current pool stops being sufficient, so procurement can
  start before capacity runs out.

:class:`CapacityManager` implements both loops on top of
:class:`~repro.core.framework.ROpus`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.core.framework import PolicyMap, ROpus
from repro.exceptions import ConfigurationError, PlacementError
from repro.placement.consolidation import ConsolidationResult
from repro.traces.ops import slice_weeks
from repro.traces.trace import DemandTrace
from repro.workloads.forecast import estimate_weekly_growth, extrapolate_ensemble


@dataclass(frozen=True)
class RollingStep:
    """One re-planning step of the medium-term loop."""

    start_week: int
    end_week: int
    result: ConsolidationResult
    migrations: tuple[str, ...]

    @property
    def n_migrations(self) -> int:
        return len(self.migrations)


@dataclass(frozen=True)
class RollingPlanReport:
    """Outcome of re-planning over a sliding window of history."""

    steps: tuple[RollingStep, ...]

    @property
    def total_migrations(self) -> int:
        return sum(step.n_migrations for step in self.steps)

    @property
    def max_servers_used(self) -> int:
        return max(step.result.servers_used for step in self.steps)

    def servers_used_series(self) -> list[int]:
        return [step.result.servers_used for step in self.steps]


@dataclass(frozen=True)
class OutlookStep:
    """One horizon point of the long-term outlook."""

    weeks_ahead: int
    feasible: bool
    servers_used: Optional[int]
    sum_required: Optional[float]


@dataclass(frozen=True)
class CapacityOutlook:
    """When does the current pool stop being sufficient?"""

    steps: tuple[OutlookStep, ...]
    growth_by_name: Mapping[str, float]

    @property
    def weeks_until_exhausted(self) -> Optional[int]:
        """First horizon at which no feasible plan exists (None = never
        within the studied horizon)."""
        for step in self.steps:
            if not step.feasible:
                return step.weeks_ahead
        return None


class CapacityManager:
    """Medium- and long-term planning loops over an :class:`ROpus` core."""

    def __init__(self, framework: ROpus):
        self.framework = framework

    # ------------------------------------------------------------------
    # Medium term: sliding-window re-planning
    # ------------------------------------------------------------------
    def rolling_plan(
        self,
        demands: Sequence[DemandTrace],
        policies: PolicyMap,
        *,
        window_weeks: int,
        step_weeks: int = 1,
        algorithm: str = "genetic",
        sticky: bool = True,
    ) -> RollingPlanReport:
        """Re-plan on every ``step_weeks`` advance of a sliding window.

        Each step consolidates the trailing ``window_weeks`` of history
        (the paper's "recent data" adaptation) and records which
        workloads changed servers relative to the previous step's plan.
        With ``sticky=True`` (default) each re-plan is seeded with the
        previous assignment, so the search only migrates workloads when
        doing so genuinely improves the consolidation.
        """
        if not demands:
            raise ConfigurationError("need at least one workload")
        total_weeks = demands[0].calendar.weeks
        if window_weeks < 1 or window_weeks > total_weeks:
            raise ConfigurationError(
                f"window_weeks must be in [1, {total_weeks}], got {window_weeks}"
            )
        if step_weeks < 1:
            raise ConfigurationError(
                f"step_weeks must be >= 1, got {step_weeks}"
            )

        instrumentation = self.framework.engine.instrumentation
        steps: list[RollingStep] = []
        previous_result: ConsolidationResult | None = None
        for start_week in range(0, total_weeks - window_weeks + 1, step_weeks):
            with instrumentation.stage("manager.rolling_step"):
                window = [
                    slice_weeks(demand, start_week, window_weeks)
                    for demand in demands
                ]
                plan = self.framework.plan(
                    window,
                    policies,
                    plan_failures=False,
                    algorithm=algorithm,
                    previous=previous_result if sticky else None,
                )
                migrations = _migrations_between(
                    previous_result, plan.consolidation
                )
                steps.append(
                    RollingStep(
                        start_week=start_week,
                        end_week=start_week + window_weeks,
                        result=plan.consolidation,
                        migrations=migrations,
                    )
                )
                previous_result = plan.consolidation
            instrumentation.count("manager.rolling_steps")
            instrumentation.count("manager.migrations", len(migrations))
        return RollingPlanReport(steps=tuple(steps))

    # ------------------------------------------------------------------
    # Long term: growth-driven capacity outlook
    # ------------------------------------------------------------------
    def capacity_outlook(
        self,
        demands: Sequence[DemandTrace],
        policies: PolicyMap,
        *,
        horizon_weeks: int,
        step_weeks: int = 4,
        growth_by_name: Mapping[str, float] | None = None,
        algorithm: str = "genetic",
    ) -> CapacityOutlook:
        """Project demand forward and find when the pool runs out.

        Growth rates default to per-workload trends fitted from the
        historical traces. Each horizon step extrapolates the ensemble,
        re-runs the planning, and records feasibility; the first
        infeasible horizon is the procurement deadline.
        """
        if horizon_weeks < 1:
            raise ConfigurationError(
                f"horizon_weeks must be >= 1, got {horizon_weeks}"
            )
        if step_weeks < 1:
            raise ConfigurationError(
                f"step_weeks must be >= 1, got {step_weeks}"
            )
        if growth_by_name is None:
            growth_by_name = {
                demand.name: estimate_weekly_growth(demand).weekly_growth
                for demand in demands
            }

        instrumentation = self.framework.engine.instrumentation
        steps: list[OutlookStep] = []
        for weeks_ahead in range(0, horizon_weeks + 1, step_weeks):
            with instrumentation.stage("manager.outlook_step"):
                projected = extrapolate_ensemble(
                    list(demands), weeks_ahead, dict(growth_by_name)
                )
                try:
                    plan = self.framework.plan(
                        projected,
                        policies,
                        plan_failures=False,
                        algorithm=algorithm,
                    )
                except PlacementError:
                    steps.append(
                        OutlookStep(
                            weeks_ahead=weeks_ahead,
                            feasible=False,
                            servers_used=None,
                            sum_required=None,
                        )
                    )
                    instrumentation.count("manager.outlook_steps")
                    continue
                steps.append(
                    OutlookStep(
                        weeks_ahead=weeks_ahead,
                        feasible=True,
                        servers_used=plan.servers_used,
                        sum_required=plan.consolidation.sum_required,
                    )
                )
            instrumentation.count("manager.outlook_steps")
        return CapacityOutlook(
            steps=tuple(steps), growth_by_name=dict(growth_by_name)
        )


def _migrations_between(
    previous: ConsolidationResult | None, current: ConsolidationResult
) -> tuple[str, ...]:
    """Workloads whose server changed between two consecutive plans."""
    if previous is None:
        return ()
    previous_server = {
        name: server
        for server, names in previous.assignment.items()
        for name in names
    }
    moved = []
    for server, names in current.assignment.items():
        for name in names:
            if previous_server.get(name, server) != server:
                moved.append(name)
    return tuple(sorted(moved))
