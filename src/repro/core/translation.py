"""End-to-end QoS translation (Section V assembled).

The :class:`QoSTranslator` turns an application's demand trace plus its
QoS requirement into per-CoS allocation traces for the workload manager,
guaranteeing the application QoS as long as the pool honours its CoS
commitments. The pipeline is:

1. compute the breakpoint ``p`` from the acceptable band and the pool's
   CoS2 access probability (formula 1);
2. compute the demand cap ``D_new_max`` from the ``M_degr`` relaxation
   (formulas 2-3);
3. raise the cap as needed to honour the ``T_degr`` contiguous-
   degradation limit (formulas 6-11);
4. split each observation's (capped) demand at ``p x D_new_max`` between
   CoS1 and CoS2 and scale by the burst factor ``1 / U_low`` to obtain
   allocation requirements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.core.cos import PoolCommitments
from repro.core.degradation import new_max_demand, realized_cap_reduction
from repro.engine import ExecutionEngine
from repro.core.epoch_limited import EpochBudgetResult, enforce_epoch_budget
from repro.core.partition import breakpoint_fraction, partition_demand
from repro.core.qos import ApplicationQoS
from repro.core.time_limited import (
    DEGRADED_TOLERANCE,
    TimeLimitedResult,
    enforce_time_limited_degradation,
    expected_utilization,
)
from repro.exceptions import TranslationError
from repro.resources.container import ResourceContainer
from repro.units import CpuShares, Fraction01, Slots
from repro.traces.allocation import AllocationTrace, CoSAllocationPair
from repro.traces.ops import longest_run_above
from repro.traces.trace import DemandTrace


@dataclass(frozen=True)
class TranslationResult:
    """A translated workload plus the diagnostics the paper reports.

    Attributes
    ----------
    pair:
        Per-CoS allocation traces for the workload manager.
    breakpoint:
        The CoS1 fraction ``p`` (formula 1).
    d_max / d_new_max:
        Raw peak demand and the final demand cap.
    cap_reduction:
        ``(D_max - D_new_max) / D_max`` (formula 4; the Figure 7 y-axis).
    degraded_fraction:
        Fraction of observations degraded under the worst-case model (the
        Figure 8 y-axis).
    longest_degraded_run_slots:
        Longest remaining contiguous degraded stretch.
    time_limited:
        Details of the ``T_degr`` iteration, when it ran.
    epoch_budget:
        Details of the per-day epoch-budget iteration, when it ran.
    """

    pair: CoSAllocationPair
    breakpoint: Fraction01
    d_max: CpuShares
    d_new_max: CpuShares
    cap_reduction: Fraction01
    degraded_fraction: Fraction01
    longest_degraded_run_slots: Slots
    time_limited: Optional[TimeLimitedResult] = None
    epoch_budget: Optional[EpochBudgetResult] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.breakpoint <= 1.0:
            raise TranslationError(
                f"breakpoint must be in [0, 1], got {self.breakpoint}"
            )
        if self.d_max < 0.0:
            raise TranslationError(f"d_max must be >= 0, got {self.d_max}")
        if self.d_new_max < 0.0:
            raise TranslationError(
                f"d_new_max must be >= 0, got {self.d_new_max}"
            )
        if not 0.0 <= self.cap_reduction <= 1.0:
            raise TranslationError(
                f"cap_reduction must be in [0, 1], got {self.cap_reduction}"
            )
        if not 0.0 <= self.degraded_fraction <= 1.0:
            raise TranslationError(
                f"degraded_fraction must be in [0, 1], "
                f"got {self.degraded_fraction}"
            )
        if self.longest_degraded_run_slots < 0:
            raise TranslationError(
                f"longest_degraded_run_slots must be >= 0, "
                f"got {self.longest_degraded_run_slots}"
            )

    @property
    def max_allocation(self) -> CpuShares:
        """The workload's maximum total allocation (C_peak contribution)."""
        return self.pair.peak_allocation()


def _translate_worker(
    commitments: PoolCommitments,
    item: tuple[DemandTrace, ApplicationQoS],
) -> TranslationResult:
    """Executor work unit: translate one workload under one QoS mode.

    A pure function of the broadcast commitments and the (demand, qos)
    item — no RNG, no shared mutable state — so serial and parallel
    backends produce identical results.
    """
    demand, qos = item
    return QoSTranslator(commitments).translate(demand, qos)


class QoSTranslator:
    """Maps application demands onto the pool's two classes of service."""

    def __init__(
        self,
        commitments: PoolCommitments,
        engine: ExecutionEngine | None = None,
    ):
        self.commitments = commitments
        self.engine = engine if engine is not None else ExecutionEngine.serial()

    def translate(
        self, demand: DemandTrace, qos: ApplicationQoS
    ) -> TranslationResult:
        """Translate one workload's demand trace under one QoS mode."""
        theta = self.commitments.theta
        p = breakpoint_fraction(qos.u_low, qos.u_high, theta)

        cap = new_max_demand(demand, qos)
        time_limited: TimeLimitedResult | None = None
        if qos.t_degr_minutes is not None and qos.m_degr_percent > 0:
            max_run_slots = demand.calendar.slots_for_duration(
                qos.t_degr_minutes
            )
            time_limited = enforce_time_limited_degradation(
                demand.values,
                initial_cap=cap,
                breakpoint_fraction=p,
                theta=theta,
                u_low=qos.u_low,
                u_high=qos.u_high,
                max_run_slots=max_run_slots,
            )
            cap = time_limited.d_new_max

        epoch_budget: EpochBudgetResult | None = None
        if qos.epochs_per_day is not None and qos.m_degr_percent > 0:
            epoch_budget = enforce_epoch_budget(
                demand.values,
                initial_cap=cap,
                breakpoint_fraction=p,
                theta=theta,
                u_low=qos.u_low,
                u_high=qos.u_high,
                max_epochs_per_period=qos.epochs_per_day,
                period_slots=demand.calendar.slots_per_day,
            )
            cap = epoch_budget.d_new_max

        cos1_demand, cos2_demand = partition_demand(
            demand.values, cap, p * cap
        )
        burst_factor = qos.acceptable.burst_factor
        pair = CoSAllocationPair(
            demand.name,
            AllocationTrace(
                f"{demand.name}.cos1",
                cos1_demand * burst_factor,
                demand.calendar,
                demand.attribute,
            ),
            AllocationTrace(
                f"{demand.name}.cos2",
                cos2_demand * burst_factor,
                demand.calendar,
                demand.attribute,
            ),
        )

        utilization = expected_utilization(
            demand.values, cap, p, theta, qos.u_low
        )
        degraded_mask = (
            utilization > qos.u_high + DEGRADED_TOLERANCE
        ) & (demand.values > 0)
        degraded_fraction = (
            float(np.count_nonzero(degraded_mask)) / len(demand)
            if len(demand)
            else 0.0
        )
        self._check_degradation_budget(demand, qos, utilization, degraded_fraction)

        return TranslationResult(
            pair=pair,
            breakpoint=p,
            d_max=demand.peak(),
            d_new_max=cap,
            cap_reduction=realized_cap_reduction(demand, cap),
            degraded_fraction=degraded_fraction,
            longest_degraded_run_slots=longest_run_above(
                degraded_mask.astype(float), 0.5
            ),
            time_limited=time_limited,
            epoch_budget=epoch_budget,
        )

    def translate_container(
        self, container: ResourceContainer, qos: ApplicationQoS
    ) -> ResourceContainer:
        """Attach translated allocation traces to a container."""
        result = self.translate(container.demand, qos)
        return container.with_allocation(result.pair)

    def translate_items(
        self, items: Sequence[tuple[DemandTrace, ApplicationQoS]]
    ) -> list[TranslationResult]:
        """Translate ``(demand, qos)`` pairs through the execution engine.

        This is the fan-out entry point every batch path routes through:
        per-application translations are independent, so the engine's
        executor maps them in parallel when configured to. The engine's
        instrumentation records the stage timing and workload count.
        """
        instrumentation = self.engine.instrumentation
        with instrumentation.stage("translation"):
            results = self.engine.map(
                _translate_worker, list(items), shared=self.commitments
            )
        instrumentation.count("translation.workloads", len(items))
        return results

    def translate_many(
        self,
        demands: Sequence[DemandTrace],
        qos_by_name: Mapping[str, ApplicationQoS] | ApplicationQoS,
    ) -> dict[str, TranslationResult]:
        """Translate an ensemble; accepts one shared QoS or a per-name map."""
        items: list[tuple[DemandTrace, ApplicationQoS]] = []
        seen: set[str] = set()
        for demand in demands:
            if isinstance(qos_by_name, ApplicationQoS):
                qos = qos_by_name
            else:
                try:
                    qos = qos_by_name[demand.name]
                except KeyError:
                    raise TranslationError(
                        f"no QoS requirement given for workload {demand.name!r}"
                    ) from None
            if demand.name in seen:
                raise TranslationError(
                    f"duplicate workload name {demand.name!r}"
                )
            seen.add(demand.name)
            items.append((demand, qos))
        results = self.translate_items(items)
        return {
            demand.name: result
            for (demand, _), result in zip(items, results)
        }

    def _check_degradation_budget(
        self,
        demand: DemandTrace,
        qos: ApplicationQoS,
        utilization: np.ndarray,
        degraded_fraction: Fraction01,
    ) -> None:
        """Verify the translation's own guarantees on the input trace.

        By construction the worst-case utilization never exceeds
        ``U_degr`` and the degraded percentage stays within ``M_degr``;
        violations indicate an internal inconsistency and raise rather
        than silently producing an unsound plan.
        """
        tolerance = 1e-9
        budget = qos.m_degr_fraction
        if degraded_fraction > budget + tolerance:
            raise TranslationError(
                f"internal error: workload {demand.name!r} has "
                f"{degraded_fraction:.4%} degraded observations, budget is "
                f"{budget:.4%}"
            )
        ceiling = qos.u_degr if qos.u_degr is not None else qos.u_high
        positive = demand.values > 0
        if positive.any() and float(utilization[positive].max()) > ceiling + 1e-6:
            raise TranslationError(
                f"internal error: workload {demand.name!r} worst-case "
                f"utilization {float(utilization[positive].max()):.4f} exceeds "
                f"ceiling {ceiling}"
            )
