"""The ``T_degr`` time-limited degradation analysis (Section V, step 3).

Percentile capping alone allows degraded observations to cluster: a
30-minute stretch of poor responsiveness annoys users even when the
overall degraded percentage is tiny. The paper therefore bounds the
*contiguous* degraded time by ``T_degr`` and enforces it with an
iterative trace analysis:

1. classify every observation as acceptable or degraded under the current
   demand cap ``D_new_max`` (using the worst-case granted allocation,
   formula 8);
2. find a run of more than ``R`` contiguous degraded observations
   (``R`` observations fit in ``T_degr`` minutes);
3. "break" the run by promoting its cheapest observation — the one with
   the smallest demand ``D_min_degr`` — to acceptable performance, which
   means raising ``D_new_max`` per formula 10::

       D_new_max = D_min_degr * U_low / (U_high * (p * (1 - theta) + theta))

   (with ``p`` from formula 1 this simplifies to ``D_min_degr`` when
   ``p > 0``, and to formula 11 when ``p = 0``);
4. repeat until no run exceeds ``R``.

Each step strictly raises the cap and permanently promotes at least one
observation, so the loop terminates in at most one iteration per
observation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.partition import partition_demand, worst_case_granted_allocation
from repro.exceptions import TranslationError
from repro.traces.ops import contiguous_runs_above, longest_run_above

# Absolute tolerance when classifying an observation as degraded: demand
# exactly at the cap computes utilization == U_high up to rounding, and
# must not be counted as degraded.
DEGRADED_TOLERANCE = 1e-9


@dataclass(frozen=True)
class TimeLimitedResult:
    """Outcome of the iterative ``T_degr`` enforcement.

    Attributes
    ----------
    d_new_max:
        The final demand cap; >= the input cap.
    iterations:
        Number of run-breaking steps performed (0 when the input cap
        already satisfied the constraint).
    longest_degraded_run:
        Longest remaining contiguous degraded run, in slots.
    degraded_fraction:
        Fraction of observations still degraded under the final cap.
    """

    d_new_max: float
    iterations: int
    longest_degraded_run: int
    degraded_fraction: float


def expected_utilization(
    demand_values: np.ndarray,
    demand_cap: float,
    breakpoint_fraction: float,
    theta: float,
    u_low: float,
) -> np.ndarray:
    """Worst-case-model utilization of allocation per observation.

    Demand is capped and partitioned; CoS1 is fully granted, CoS2 at
    exactly ``theta``; utilization is the *raw* demand divided by the
    granted allocation. Zero-demand slots report utilization 0.
    """
    values = np.asarray(demand_values, dtype=float)
    if not 0.0 <= breakpoint_fraction <= 1.0:
        raise TranslationError(
            f"breakpoint fraction must be in [0, 1], got {breakpoint_fraction}"
        )
    cos1, cos2 = partition_demand(
        values, demand_cap, breakpoint_fraction * demand_cap
    )
    allocation = worst_case_granted_allocation(cos1, cos2, theta, u_low)
    utilization = np.zeros_like(values)
    positive = allocation > 0
    utilization[positive] = values[positive] / allocation[positive]
    starved = (~positive) & (values > 0)
    utilization[starved] = np.inf
    return utilization


def enforce_time_limited_degradation(
    demand_values: np.ndarray,
    initial_cap: float,
    breakpoint_fraction: float,
    theta: float,
    u_low: float,
    u_high: float,
    max_run_slots: int,
) -> TimeLimitedResult:
    """Raise ``D_new_max`` until no degraded run exceeds ``max_run_slots``.

    Parameters
    ----------
    demand_values:
        The workload's raw demand observations.
    initial_cap:
        ``D_new_max`` from the ``M_degr`` relaxation (formulas 2-3).
    breakpoint_fraction:
        ``p`` from formula 1 (held fixed throughout, as in the paper).
    theta, u_low, u_high:
        CoS2 access probability and the acceptable utilization band.
    max_run_slots:
        ``R``: the number of observations fitting in ``T_degr`` minutes.
        Runs of *more than* ``R`` degraded observations violate the
        constraint.
    """
    values = np.asarray(demand_values, dtype=float)
    if initial_cap < 0:
        raise TranslationError(f"initial cap must be >= 0, got {initial_cap}")
    if max_run_slots < 0:
        raise TranslationError(
            f"max_run_slots must be >= 0, got {max_run_slots}"
        )
    if not 0 < u_low <= u_high:
        raise TranslationError(
            f"need 0 < U_low <= U_high, got U_low={u_low}, U_high={u_high}"
        )
    if not 0 < theta <= 1:
        raise TranslationError(f"theta must be in (0, 1], got {theta}")

    cap = float(initial_cap)
    iterations = 0
    promotion_factor = u_low / (
        u_high * (breakpoint_fraction * (1.0 - theta) + theta)
    )
    max_iterations = values.shape[0] + 1

    while True:
        utilization = expected_utilization(
            values, cap, breakpoint_fraction, theta, u_low
        )
        violating_min = _min_demand_in_violating_run(
            values, utilization, u_high, max_run_slots
        )
        if violating_min is None:
            break
        new_cap = violating_min * promotion_factor
        if new_cap <= cap:
            # The promoted observation's utilization would not change;
            # only possible through floating-point degeneracy. Nudge the
            # cap so the loop provably terminates.
            new_cap = np.nextafter(cap, np.inf)
        cap = new_cap
        iterations += 1
        if iterations > max_iterations:
            raise TranslationError(
                "T_degr enforcement failed to converge; demand trace or "
                "parameters are degenerate"
            )

    final_utilization = expected_utilization(
        values, cap, breakpoint_fraction, theta, u_low
    )
    degraded_mask = (final_utilization > u_high + DEGRADED_TOLERANCE) & (values > 0)
    return TimeLimitedResult(
        d_new_max=cap,
        iterations=iterations,
        longest_degraded_run=longest_run_above(
            degraded_mask.astype(float), 0.5
        ),
        degraded_fraction=(
            float(np.count_nonzero(degraded_mask)) / values.shape[0]
            if values.shape[0]
            else 0.0
        ),
    )


def _min_demand_in_violating_run(
    values: np.ndarray,
    utilization: np.ndarray,
    u_high: float,
    max_run_slots: int,
) -> float | None:
    """``D_min_degr`` of the first over-length degraded run, if any."""
    degraded = (
        (utilization > u_high + DEGRADED_TOLERANCE) & (values > 0)
    ).astype(float)
    for run in contiguous_runs_above(degraded, 0.5):
        if run.length > max_run_slots:
            return float(values[run.start : run.stop].min())
    return None
