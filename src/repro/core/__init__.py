"""R-Opus core: application QoS, pool CoS commitments, QoS translation.

This package implements the paper's primary contribution:

* :mod:`repro.core.qos` — per-application QoS requirement specifications
  for normal and failure modes (Section III);
* :mod:`repro.core.cos` — resource-pool class-of-service commitments
  (Section IV);
* :mod:`repro.core.partition` — the portfolio-style demand split across
  the two classes of service (Section V, step 1);
* :mod:`repro.core.degradation` — the ``M_degr`` percentile relaxation
  and its capacity-reduction bound (Section V, step 2);
* :mod:`repro.core.time_limited` — the ``T_degr`` time-limited
  degradation trace analysis (Section V, step 3);
* :mod:`repro.core.translation` — the end-to-end QoS translation
  producing per-CoS allocation traces;
* :mod:`repro.core.framework` — the :class:`ROpus` facade wiring
  translation, placement and failure planning together.
"""

from repro.core.cos import GUARANTEED_COS, CoSCommitment, PoolCommitments
from repro.core.degradation import (
    max_cap_reduction_bound,
    new_max_demand,
    realized_cap_reduction,
)
from repro.core.epoch_limited import (
    EpochBudgetResult,
    count_epochs_per_period,
    enforce_epoch_budget,
)
from repro.core.framework import CapacityPlan, ROpus
from repro.core.manager import (
    CapacityManager,
    CapacityOutlook,
    RollingPlanReport,
)
from repro.core.partition import breakpoint_fraction, partition_demand
from repro.core.qos import ApplicationQoS, DegradedSpec, QoSPolicy, QoSRange
from repro.core.time_limited import enforce_time_limited_degradation
from repro.core.translation import QoSTranslator, TranslationResult

__all__ = [
    "GUARANTEED_COS",
    "ApplicationQoS",
    "CapacityManager",
    "CapacityOutlook",
    "CapacityPlan",
    "CoSCommitment",
    "DegradedSpec",
    "EpochBudgetResult",
    "PoolCommitments",
    "QoSPolicy",
    "QoSRange",
    "QoSTranslator",
    "ROpus",
    "RollingPlanReport",
    "TranslationResult",
    "breakpoint_fraction",
    "count_epochs_per_period",
    "enforce_epoch_budget",
    "enforce_time_limited_degradation",
    "max_cap_reduction_bound",
    "new_max_demand",
    "partition_demand",
    "realized_cap_reduction",
]
