"""The R-Opus facade: translate, place, and plan for failures.

:class:`ROpus` wires the framework's pieces together the way Figure 2 of
the paper draws them:

1. the pool operator supplies :class:`~repro.core.cos.PoolCommitments`
   and a :class:`~repro.resources.pool.ResourcePool`;
2. each application owner supplies a
   :class:`~repro.core.qos.QoSPolicy` (normal- and failure-mode QoS);
3. the QoS translation maps demands onto the two CoS;
4. the workload placement service consolidates the translated workloads
   onto few servers, and the failure planner reports whether a spare
   server is needed.

:meth:`ROpus.plan` is a composition of named pipeline stages —
``translate → cluster → shard → place → refine → failure_check``
(:data:`PIPELINE_STAGES`). With ``sharding="off"`` (the default) the
cluster/shard/refine stages are no-ops and placement runs the single
monolithic consolidation exactly as it always has; with ``"auto"`` or an
explicit shard count the hierarchical tier
(:mod:`repro.placement.sharding`) clusters workloads by demand shape,
plans sub-pools in parallel, and refines across them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Union

from repro.core.cos import PoolCommitments
from repro.core.qos import ApplicationQoS, QoSPolicy
from repro.core.translation import QoSTranslator, TranslationResult
from repro.engine import Checkpointer, ExecutionEngine
from repro.exceptions import ConfigurationError
from repro.placement.affinity import PlacementConstraints
from repro.placement.clustering import demand_shape_features
from repro.placement.consolidation import ConsolidationResult, Consolidator
from repro.placement.failure import (
    FailurePlanner,
    FailureReport,
    FailureSweepPolicy,
    SpareSizingCurve,
)
from repro.placement.genetic import GeneticSearchConfig
from repro.placement.sharding import (
    HierarchicalPlanner,
    ShardedPlacementResult,
    ShardingPolicy,
)
from repro.resources.pool import ResourcePool
from repro.traces.trace import DemandTrace

PolicyMap = Union[Mapping[str, QoSPolicy], QoSPolicy]

#: The named stages :meth:`ROpus.plan` composes, in execution order.
#: Each maps to a ``_stage_<name>`` method on :class:`ROpus`; stages
#: that do not apply to the current configuration (the hierarchical
#: ones when ``sharding="off"``, ``failure_check`` when failures are
#: not planned) record themselves as skipped and do no work.
PIPELINE_STAGES = (
    "translate",
    "cluster",
    "shard",
    "place",
    "refine",
    "failure_check",
)


def _policy_digest(policies: PolicyMap) -> object:
    """A JSON-able canonical form of the policy input.

    ``QoSPolicy`` and everything it nests are frozen dataclasses of
    floats and strings, so ``repr`` is a stable value encoding.
    """
    if isinstance(policies, QoSPolicy):
        return repr(policies)
    return sorted((name, repr(policy)) for name, policy in policies.items())


def planning_fingerprint(
    demands: Sequence[DemandTrace],
    policies: PolicyMap,
    pool: ResourcePool,
    commitments: PoolCommitments,
    search_config: GeneticSearchConfig | None,
    *,
    tolerance: float,
    attribute: str,
    kernel: str,
    algorithm: str,
    plan_failures: bool,
    relax_all_on_failure: bool,
    previous: ConsolidationResult | None,
    sharding: ShardingPolicy | None = None,
    constraints: PlacementConstraints | None = None,
    failure_policy: FailureSweepPolicy | None = None,
) -> str:
    """A digest of everything a planning run's decisions depend on.

    Checkpoints stamped with this fingerprint are only ever resumed by
    a run whose inputs hash identically — changing a trace, the pool,
    the seed (inside ``search_config``), or any planning knob — the
    sharding policy included — makes old checkpoints read as absent
    instead of silently steering the new run. Execution backend and
    worker count are deliberately excluded: results are
    backend-independent, so a resume may legitimately use different
    parallelism.
    """
    document = {
        "demands": [
            [
                demand.name,
                demand.attribute,
                hashlib.sha256(demand.values.tobytes()).hexdigest(),
                repr(demand.calendar),
            ]
            for demand in demands
        ],
        "policies": _policy_digest(policies),
        "pool": [
            [
                server.name,
                server.cpus,
                sorted(server.attributes.items()),
                server.rack,
                server.zone,
            ]
            for server in pool.servers
        ],
        "commitments": repr(commitments),
        "search_config": repr(search_config),
        "tolerance": repr(tolerance),
        "attribute": attribute,
        "kernel": kernel,
        "algorithm": algorithm,
        "plan_failures": plan_failures,
        "relax_all_on_failure": relax_all_on_failure,
        "previous": (
            None
            if previous is None
            else sorted(
                (server, list(names))
                for server, names in previous.assignment.items()
            )
        ),
        "sharding": None if sharding is None else repr(sharding),
        "constraints": None if constraints is None else repr(constraints),
        "failure_policy": (
            None if failure_policy is None else repr(failure_policy)
        ),
    }
    canonical = json.dumps(document, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CapacityPlan:
    """Everything the capacity manager needs from one planning run.

    ``timings`` maps stage names (``translation``, ``placement``,
    ``failure_planning``, and — for sharded runs — ``clustering``,
    ``sharding``, ``refinement``) to the seconds this run spent in
    each, as recorded by the engine's instrumentation; ``counters``
    holds the run's counter increments (kernel calls and bracket
    iterations — including the fused kernel's ``kernel.fused_rows``
    fast-path rows and ``kernel.f32_retries`` verification fallbacks —
    evaluation cache hits/misses, bytes broadcast to workers, ...).
    Every kernel mode records the full ``kernel.*`` set, zeros
    included, so counter maps are comparable across modes and scales.
    ``sharding`` is the hierarchical tier's summary
    (shard count and sizes, migration rounds, per-shard timings) when
    the run was sharded, ``None`` otherwise.
    """

    translations: Mapping[str, TranslationResult]
    consolidation: ConsolidationResult
    failure_report: Optional[FailureReport]
    timings: Mapping[str, float] = field(default_factory=dict)
    counters: Mapping[str, float] = field(default_factory=dict)
    sharding: Optional[Mapping[str, object]] = None
    #: Domain-scoped failure sweeps (scope spec → report) when the run
    #: had a :class:`~repro.placement.failure.FailureSweepPolicy`.
    domain_reports: Optional[Mapping[str, FailureReport]] = None
    #: The spares-needed-vs-failure-scope curve when the policy asked
    #: for the spare-sizing search.
    spare_curve: Optional[SpareSizingCurve] = None

    @property
    def servers_used(self) -> int:
        return self.consolidation.servers_used

    @property
    def spare_server_needed(self) -> Optional[bool]:
        """Whether failures require a spare (``None`` if not analysed)."""
        if self.failure_report is None:
            return None
        return self.failure_report.spare_server_needed

    def summary(self) -> dict[str, object]:
        """A compact report of the headline planning quantities."""
        return {
            "workloads": len(self.translations),
            "servers_used": self.servers_used,
            "sum_required": self.consolidation.sum_required,
            "sum_peak_allocations": self.consolidation.sum_peak_allocations,
            "sharing_savings": self.consolidation.sharing_savings(),
            "spare_server_needed": self.spare_server_needed,
            "failure_domains": (
                None
                if self.domain_reports is None
                else {
                    scope: report.summary()
                    for scope, report in self.domain_reports.items()
                }
            ),
            "spare_curve": (
                None
                if self.spare_curve is None
                else self.spare_curve.to_payload()
            ),
            "sharding": None if self.sharding is None else dict(self.sharding),
            "stage_timings": dict(self.timings),
            "counters": dict(self.counters),
            "resilience": self.resilience_summary(),
        }

    def resilience_summary(self) -> dict[str, float]:
        """The run's recovery telemetry: retries, respawns, fallbacks,
        checkpoint activity, and resumed work, pulled out of the full
        counter map so operators see degraded-but-successful runs at a
        glance (an all-zero map means the run never needed recovery)."""
        prefixes = ("resilience.", "checkpoint.")
        names = (
            "failure.case_resumes",
            "placement.ga_resumes",
            "placement.shard_resumes",
        )
        return {
            name: value
            for name, value in self.counters.items()
            if name.startswith(prefixes) or name in names
        }

    def plan_hash(self) -> str:
        """A digest of the plan's *decisions*, stable across recovery.

        Hashes what the capacity manager would act on — the
        consolidation assignment and per-server required capacities,
        plus each failure case's feasibility and assignment — and
        nothing operational (timings, counters, search trajectories).
        A run that survived injected faults via retries, or resumed
        from a checkpoint after a kill, therefore hashes identically to
        an undisturbed run; a changed hash means the *plan* changed.

        Domain-scoped sweeps and the spare-sizing curve join the
        document only when the run produced them, so plans from runs
        without a failure policy hash exactly as they always have.
        """
        document = {
            "consolidation": {
                "assignment": {
                    server: list(names)
                    for server, names in self.consolidation.assignment.items()
                },
                "required_by_server": dict(
                    self.consolidation.required_by_server
                ),
                "sum_required": self.consolidation.sum_required,
            },
            "failures": (
                None
                if self.failure_report is None
                else [
                    {
                        "failed_server": case.label,
                        "feasible": case.feasible,
                        "assignment": (
                            None
                            if case.result is None
                            else {
                                server: list(names)
                                for server, names in (
                                    case.result.assignment.items()
                                )
                            }
                        ),
                    }
                    for case in self.failure_report.cases
                ]
            ),
        }
        if self.domain_reports is not None:
            document["failure_domains"] = {
                scope: [
                    {
                        "case": case.label,
                        "feasible": case.feasible,
                        "assignment": (
                            None
                            if case.result is None
                            else {
                                server: list(names)
                                for server, names in (
                                    case.result.assignment.items()
                                )
                            }
                        ),
                    }
                    for case in report.cases
                ]
                for scope, report in self.domain_reports.items()
            }
        if self.spare_curve is not None:
            document["spare_curve"] = self.spare_curve.to_payload()
        canonical = json.dumps(document, sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class _PlanContext:
    """Mutable state threaded through one run of the staged pipeline."""

    demands: Sequence[DemandTrace]
    policies: PolicyMap
    algorithm: str
    previous: Optional[ConsolidationResult]
    plan_failures: bool
    relax_all_on_failure: bool
    planner: Optional[HierarchicalPlanner] = None
    translations: dict[str, TranslationResult] = field(default_factory=dict)
    pairs: list = field(default_factory=list)
    consolidation: Optional[ConsolidationResult] = None
    sharded: Optional[ShardedPlacementResult] = None
    failure_report: Optional[FailureReport] = None
    domain_reports: Optional[dict[str, FailureReport]] = None
    spare_curve: Optional[SpareSizingCurve] = None


class ROpus:
    """The composite framework, end to end.

    >>> from repro.core.cos import PoolCommitments
    >>> from repro.core.qos import QoSPolicy, case_study_qos
    >>> from repro.resources.pool import ResourcePool
    >>> from repro.resources.server import homogeneous_servers
    >>> framework = ROpus(
    ...     PoolCommitments.of(theta=0.95),
    ...     ResourcePool(homogeneous_servers(4)),
    ... )  # then framework.plan(demands, QoSPolicy(case_study_qos()))
    """

    def __init__(
        self,
        commitments: PoolCommitments,
        pool: ResourcePool,
        *,
        search_config: GeneticSearchConfig | None = None,
        tolerance: float = 0.01,
        attribute: str = "cpu",
        engine: ExecutionEngine | None = None,
        kernel: str = "batch",
        share_sweep_cache: bool = True,
        checkpointer: Checkpointer | None = None,
        sharding: Union[int, str, ShardingPolicy] = "off",
        cluster_seed: Optional[int] = None,
        refine_rounds: int = 2,
        constraints: PlacementConstraints | None = None,
        failure_policy: FailureSweepPolicy | None = None,
    ):
        self.commitments = commitments
        self.pool = pool
        self.search_config = search_config
        self.tolerance = tolerance
        self.attribute = attribute
        self.engine = engine if engine is not None else ExecutionEngine.serial()
        self.kernel = kernel
        self.share_sweep_cache = share_sweep_cache
        self.checkpointer = checkpointer
        if isinstance(sharding, ShardingPolicy):
            self.sharding_policy = sharding
        else:
            self.sharding_policy = ShardingPolicy(
                shards=sharding,
                cluster_seed=cluster_seed,
                refine_rounds=refine_rounds,
            )
        if checkpointer is not None and checkpointer.instrumentation is None:
            checkpointer.instrumentation = self.engine.instrumentation
        #: Anti-affinity constraints, threaded into every consolidation
        #: this framework runs (monolithic, sharded, and failure
        #: what-ifs plan *around* them via the priced objective).
        self.constraints = constraints
        #: What the ``failure_check`` stage sweeps beyond the paper's
        #: single-server baseline (domain scopes, degraded servers, the
        #: spare-sizing curve). ``None`` keeps the historical behavior.
        self.failure_policy = failure_policy
        self.translator = QoSTranslator(commitments, engine=self.engine)

    def translate(
        self,
        demands: Sequence[DemandTrace],
        policies: PolicyMap,
        *,
        failure_mode: bool = False,
    ) -> dict[str, TranslationResult]:
        """Run the QoS translation for every workload in one mode."""
        items: list[tuple[DemandTrace, ApplicationQoS]] = []
        seen: set[str] = set()
        for demand in demands:
            if demand.name in seen:
                raise ConfigurationError(
                    f"duplicate workload name {demand.name!r}"
                )
            seen.add(demand.name)
            items.append(
                (demand, self._qos_for(policies, demand.name, failure_mode))
            )
        results = self.translator.translate_items(items)
        return {
            demand.name: result
            for (demand, _), result in zip(items, results)
        }

    def plan(
        self,
        demands: Sequence[DemandTrace],
        policies: PolicyMap,
        *,
        plan_failures: bool = True,
        relax_all_on_failure: bool = True,
        algorithm: str = "genetic",
        previous: "ConsolidationResult | None" = None,
    ) -> CapacityPlan:
        """Run the staged pipeline and assemble the capacity plan.

        ``previous`` seeds the placement search with an earlier plan so
        re-planning favours low-migration solutions (see
        :meth:`~repro.placement.consolidation.Consolidator.consolidate`);
        it applies to the monolithic path (``sharding="off"``) only —
        the hierarchical tier re-derives placements per shard.
        """
        instrumentation = self.engine.instrumentation
        baseline = instrumentation.snapshot()
        counter_baseline = instrumentation.counters()
        if self.checkpointer is not None:
            # Stamp this run's inputs on the store: checkpoints written
            # now carry the fingerprint, and any leftover documents from
            # a run over *different* inputs read as absent instead of
            # silently resuming the wrong problem.
            self.checkpointer.fingerprint = planning_fingerprint(
                demands,
                policies,
                self.pool,
                self.commitments,
                self.search_config,
                tolerance=self.tolerance,
                attribute=self.attribute,
                kernel=self.kernel,
                algorithm=algorithm,
                plan_failures=plan_failures,
                relax_all_on_failure=relax_all_on_failure,
                previous=previous,
                sharding=self.sharding_policy,
                constraints=self.constraints,
                failure_policy=self.failure_policy,
            )
        context = _PlanContext(
            demands=demands,
            policies=policies,
            algorithm=algorithm,
            previous=previous,
            plan_failures=plan_failures,
            relax_all_on_failure=relax_all_on_failure,
            planner=self._hierarchical_planner(),
        )
        for name in PIPELINE_STAGES:
            stage = getattr(self, f"_stage_{name}")
            ran = stage(context)
            instrumentation.event(
                "pipeline.stage", stage=name, ran=bool(ran)
            )
        if self.checkpointer is not None:
            # The run completed: its checkpoints are spent. Rotating
            # them out here means only interrupted runs leave resumable
            # state behind.
            self.checkpointer.clear()
        return CapacityPlan(
            translations=context.translations,
            consolidation=context.consolidation,
            failure_report=context.failure_report,
            timings=instrumentation.timings_since(baseline),
            counters=instrumentation.counters_since(counter_baseline),
            sharding=(
                None
                if context.sharded is None
                else context.sharded.summary()
            ),
            domain_reports=context.domain_reports,
            spare_curve=context.spare_curve,
        )

    # ------------------------------------------------------------------
    # Pipeline stages (see PIPELINE_STAGES for the composition order).
    # Each returns True when it did work, False when it was skipped for
    # the current configuration.
    # ------------------------------------------------------------------
    def _hierarchical_planner(self) -> Optional[HierarchicalPlanner]:
        if not self.sharding_policy.enabled:
            return None
        return HierarchicalPlanner(
            self.pool,
            self.commitments.cos2,
            config=self.search_config,
            tolerance=self.tolerance,
            attribute=self.attribute,
            engine=self.engine,
            kernel=self.kernel,
            policy=self.sharding_policy,
            constraints=self.constraints,
        )

    def _stage_translate(self, context: _PlanContext) -> bool:
        context.translations = self.translate(
            context.demands, context.policies
        )
        context.pairs = [
            result.pair for result in context.translations.values()
        ]
        return True

    def _stage_cluster(self, context: _PlanContext) -> bool:
        if context.planner is None:
            return False
        features = demand_shape_features(
            context.demands, context.translations
        )
        context.planner.cluster(context.pairs, features)
        return True

    def _stage_shard(self, context: _PlanContext) -> bool:
        if context.planner is None:
            return False
        context.planner.partition()
        return True

    def _stage_place(self, context: _PlanContext) -> bool:
        if context.planner is None:
            # The monolithic path: one consolidation over the whole
            # pool, exactly as before the hierarchical tier existed.
            consolidator = Consolidator(
                self.pool,
                self.commitments.cos2,
                config=self.search_config,
                tolerance=self.tolerance,
                attribute=self.attribute,
                engine=self.engine,
                kernel=self.kernel,
                constraints=self.constraints,
            )
            context.consolidation = consolidator.consolidate(
                context.pairs,
                algorithm=context.algorithm,
                previous=context.previous,
                checkpointer=self.checkpointer,
            )
        else:
            context.planner.place(self.checkpointer, context.algorithm)
        return True

    def _stage_refine(self, context: _PlanContext) -> bool:
        if context.planner is None:
            return False
        context.sharded = context.planner.refine()
        context.consolidation = context.sharded.consolidation
        return True

    def _stage_failure_check(self, context: _PlanContext) -> bool:
        if not context.plan_failures:
            return False
        planner = FailurePlanner(
            self.translator,
            config=self.search_config,
            tolerance=self.tolerance,
            attribute=self.attribute,
            engine=self.engine,
            kernel=self.kernel,
            share_cache=self.share_sweep_cache,
            checkpointer=self.checkpointer,
        )
        context.failure_report = planner.plan(
            context.demands,
            context.policies,
            self.pool,
            context.consolidation,
            relax_all=context.relax_all_on_failure,
            algorithm=context.algorithm,
        )
        policy = self.failure_policy
        if policy is None:
            return True
        # Domain-scoped sweeps on top of the single-server baseline.
        # Each scope checkpoints under its own key prefix, so a killed
        # multi-scope sweep resumes every completed case regardless of
        # which scope was in flight.
        domain_reports: dict[str, FailureReport] = {}
        for scope in policy.scopes:
            domain_reports[scope] = planner.plan_scope(
                context.demands,
                context.policies,
                self.pool,
                context.consolidation,
                scope=scope,
                relax_all=context.relax_all_on_failure,
                algorithm=context.algorithm,
                max_cases=policy.max_cases,
                sample_seed=policy.sample_seed,
                key_prefix=f"scope:{scope}",
            )
        if policy.degraded_factor is not None:
            label = (
                f"degraded:{policy.degraded_scope}"
                f"@{policy.degraded_factor:g}"
            )
            domain_reports[label] = planner.plan_degraded(
                context.demands,
                context.policies,
                self.pool,
                context.consolidation,
                factor=policy.degraded_factor,
                scope=policy.degraded_scope,
                relax_all=context.relax_all_on_failure,
                algorithm=context.algorithm,
                key_prefix=label,
            )
        if domain_reports:
            context.domain_reports = domain_reports
        if policy.spare_curve:
            context.spare_curve = planner.spare_sizing_curve(
                context.demands,
                context.policies,
                self.pool,
                context.consolidation,
                scopes=policy.spare_scopes,
                max_spares=policy.max_spares,
                relax_all=context.relax_all_on_failure,
                algorithm=context.algorithm,
                max_cases=policy.max_cases,
                sample_seed=policy.sample_seed,
            )
        return True

    def _qos_for(
        self, policies: PolicyMap, name: str, failure_mode: bool
    ) -> ApplicationQoS:
        if isinstance(policies, QoSPolicy):
            return policies.mode(failure_mode)
        try:
            policy = policies[name]
        except KeyError:
            raise ConfigurationError(
                f"no QoS policy given for workload {name!r}"
            ) from None
        return policy.mode(failure_mode)
