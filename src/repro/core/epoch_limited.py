"""Per-period degraded-epoch budget (the paper's footnote 2 extension).

Section III notes: "An additional constraint on the number of degraded
epochs per time period, e.g., per day or week, is a useful enhancement."
A user who sees three separate slowdowns in one afternoon complains even
if each was short; this module bounds the *count* of degraded epochs
(maximal contiguous degraded runs) within each fixed period of the
trace.

Enforcement parallels the ``T_degr`` analysis: while some period
contains more than the budgeted number of epochs, the *cheapest whole
epoch* — the one whose largest demand is smallest — is eliminated by
raising ``D_new_max`` until that epoch's peak observation performs
acceptably. Eliminating whole epochs (rather than splitting them, as the
``T_degr`` promotion does) guarantees the per-period count decreases.
Each step strictly raises the cap, so the loop terminates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.time_limited import DEGRADED_TOLERANCE, expected_utilization
from repro.exceptions import TranslationError
from repro.traces.ops import contiguous_runs_above


@dataclass(frozen=True)
class EpochBudgetResult:
    """Outcome of the per-period epoch-budget enforcement.

    Attributes
    ----------
    d_new_max:
        The final demand cap; >= the input cap.
    iterations:
        Number of epoch-elimination steps performed.
    worst_period_epochs:
        Largest per-period epoch count remaining under the final cap.
    """

    d_new_max: float
    iterations: int
    worst_period_epochs: int


def count_epochs_per_period(
    degraded_mask: np.ndarray, period_slots: int
) -> list[int]:
    """Number of degraded epochs intersecting each period.

    An epoch spanning a period boundary counts toward every period it
    touches — from the user's point of view both days had a slowdown.
    """
    if period_slots < 1:
        raise TranslationError(
            f"period_slots must be >= 1, got {period_slots}"
        )
    n = degraded_mask.shape[0]
    n_periods = (n + period_slots - 1) // period_slots
    counts = [0] * n_periods
    for run in contiguous_runs_above(degraded_mask.astype(float), 0.5):
        first_period = run.start // period_slots
        last_period = (run.stop - 1) // period_slots
        for period in range(first_period, last_period + 1):
            counts[period] += 1
    return counts


def enforce_epoch_budget(
    demand_values: np.ndarray,
    initial_cap: float,
    breakpoint_fraction: float,
    theta: float,
    u_low: float,
    u_high: float,
    max_epochs_per_period: int,
    period_slots: int,
) -> EpochBudgetResult:
    """Raise ``D_new_max`` until no period exceeds its epoch budget.

    Parameters mirror
    :func:`~repro.core.time_limited.enforce_time_limited_degradation`,
    plus the budget itself: at most ``max_epochs_per_period`` degraded
    epochs may intersect any window of ``period_slots`` observations
    (aligned to the start of the trace — pass the calendar's
    ``slots_per_day`` for a daily budget).
    """
    values = np.asarray(demand_values, dtype=float)
    if initial_cap < 0:
        raise TranslationError(f"initial cap must be >= 0, got {initial_cap}")
    if max_epochs_per_period < 0:
        raise TranslationError(
            f"max_epochs_per_period must be >= 0, got {max_epochs_per_period}"
        )
    if period_slots < 1:
        raise TranslationError(f"period_slots must be >= 1, got {period_slots}")

    # Promoting an epoch's peak demand D to acceptable performance needs
    # cap >= D * u_low / (u_high * (p(1-theta)+theta)) — the same
    # promotion factor as formula 10 of the T_degr analysis.
    promotion_factor = u_low / (
        u_high * (breakpoint_fraction * (1.0 - theta) + theta)
    )

    cap = float(initial_cap)
    iterations = 0
    max_iterations = values.shape[0] + 1

    while True:
        utilization = expected_utilization(
            values, cap, breakpoint_fraction, theta, u_low
        )
        degraded = (utilization > u_high + DEGRADED_TOLERANCE) & (values > 0)
        victim_peak = _cheapest_epoch_in_overfull_period(
            values, degraded, max_epochs_per_period, period_slots
        )
        if victim_peak is None:
            break
        new_cap = victim_peak * promotion_factor
        if new_cap <= cap:
            new_cap = np.nextafter(cap, np.inf)
        cap = new_cap
        iterations += 1
        if iterations > max_iterations:
            raise TranslationError(
                "epoch-budget enforcement failed to converge"
            )

    final_utilization = expected_utilization(
        values, cap, breakpoint_fraction, theta, u_low
    )
    final_degraded = (
        final_utilization > u_high + DEGRADED_TOLERANCE
    ) & (values > 0)
    counts = count_epochs_per_period(final_degraded, period_slots)
    return EpochBudgetResult(
        d_new_max=cap,
        iterations=iterations,
        worst_period_epochs=max(counts) if counts else 0,
    )


def _cheapest_epoch_in_overfull_period(
    values: np.ndarray,
    degraded_mask: np.ndarray,
    max_epochs_per_period: int,
    period_slots: int,
) -> float | None:
    """Peak demand of the cheapest epoch in the first over-budget period.

    Among the epochs intersecting that period, returns the smallest
    per-epoch *maximum* demand — eliminating that epoch entirely needs
    the smallest cap increase.
    """
    counts = count_epochs_per_period(degraded_mask, period_slots)
    overfull = next(
        (
            period
            for period, count in enumerate(counts)
            if count > max_epochs_per_period
        ),
        None,
    )
    if overfull is None:
        return None
    period_start = overfull * period_slots
    period_stop = period_start + period_slots
    epoch_peaks = [
        float(values[run.start : run.stop].max())
        for run in contiguous_runs_above(degraded_mask.astype(float), 0.5)
        if run.start < period_stop and run.stop > period_start
    ]
    return min(epoch_peaks)
