"""Resource-pool class-of-service commitments (Section IV).

The pool operator offers two classes of service:

* **CoS1** is guaranteed: the placement service keeps the per-server sum
  of peak CoS1 allocations within server capacity, so CoS1 requests are
  always granted.
* **CoS2** is statistically multiplexed: a unit of requested capacity is
  available with at least the *resource access probability* ``theta``,
  and requests not satisfied immediately must be satisfied within a
  deadline of ``s`` slots.

The commitment governs the degree of overbooking: a lower ``theta`` lets
the operator pack more aggressively at the price of more application
demand having to ride in CoS1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import CommitmentError
from repro.traces.calendar import TraceCalendar

GUARANTEED_COS = "CoS1"
MULTIPLEXED_COS = "CoS2"


@dataclass(frozen=True)
class CoSCommitment:
    """The CoS2 commitment: access probability plus satisfaction deadline.

    Parameters
    ----------
    theta:
        Minimum resource access probability for CoS2, in ``(0, 1]``.
        ``theta=1`` makes CoS2 as strong as CoS1.
    deadline_minutes:
        Demands not satisfied on request must be satisfied within this
        many minutes (the paper's case study uses 60).
    """

    theta: float
    deadline_minutes: float = 60.0

    def __post_init__(self) -> None:
        if not 0.0 < self.theta <= 1.0:
            raise CommitmentError(f"theta must be in (0, 1], got {self.theta}")
        if self.deadline_minutes < 0:
            raise CommitmentError(
                f"deadline must be >= 0 minutes, got {self.deadline_minutes}"
            )

    def deadline_slots(self, calendar: TraceCalendar) -> int:
        """The deadline ``s`` expressed in whole observation slots."""
        return calendar.slots_for_duration(self.deadline_minutes)


@dataclass(frozen=True)
class PoolCommitments:
    """The pool's complete resource-access QoS offering.

    CoS1 needs no parameters (it is guaranteed by construction); the pool
    is therefore fully described by its CoS2 commitment.
    """

    cos2: CoSCommitment

    @property
    def theta(self) -> float:
        return self.cos2.theta

    @classmethod
    def of(cls, theta: float, deadline_minutes: float = 60.0) -> "PoolCommitments":
        """Shorthand constructor: ``PoolCommitments.of(0.95)``."""
        return cls(CoSCommitment(theta=theta, deadline_minutes=deadline_minutes))
