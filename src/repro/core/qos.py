"""Application QoS requirement specifications (Section III).

An application owner expresses QoS as a *utilization of allocation* band:

* ``U_low`` — utilization supporting ideal performance; its reciprocal is
  the burst factor used to size allocations;
* ``U_high`` — the threshold beyond which performance is undesirable;
* ``U_degr`` — a ceiling for tolerated, infrequent degradation;
* ``M_degr`` — the percentage of measurements allowed in the degraded
  band ``(U_high, U_degr]``;
* ``T_degr`` — the maximum *contiguous* time degraded performance may
  persist (sustained poor performance drives user complaints even when
  the overall percentage is small).

Requirements are given independently for normal operation and for the
failure mode where one server in the pool is down
(:class:`QoSPolicy`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import QoSSpecificationError
from repro.units import Fraction01, Percent


@dataclass(frozen=True)
class QoSRange:
    """The acceptable utilization-of-allocation band ``[U_low, U_high]``.

    >>> QoSRange(0.5, 0.66).burst_factor
    2.0
    """

    u_low: Fraction01
    u_high: Fraction01

    def __post_init__(self) -> None:
        if not 0.0 < self.u_low <= 1.0:
            raise QoSSpecificationError(
                f"U_low must be in (0, 1], got {self.u_low}"
            )
        if not 0.0 < self.u_high <= 1.0:
            raise QoSSpecificationError(
                f"U_high must be in (0, 1], got {self.u_high}"
            )
        if self.u_low > self.u_high:
            raise QoSSpecificationError(
                f"U_low ({self.u_low}) must not exceed U_high ({self.u_high})"
            )

    @property
    def burst_factor(self) -> float:
        """``1 / U_low``: the multiplier sizing ideal allocations."""
        return 1.0 / self.u_low

    def contains(self, utilization: Fraction01) -> bool:
        """True when a measured utilization lies in the acceptable band.

        Utilizations *below* ``U_low`` also support ideal performance
        (at the price of over-allocation), so only the upper bound
        disqualifies.
        """
        return utilization <= self.u_high


@dataclass(frozen=True)
class DegradedSpec:
    """Tolerated degraded performance beyond the acceptable band.

    Parameters
    ----------
    m_degr_percent:
        ``M_degr = 100 - M``: at most this percentage of measurements may
        have utilization of allocation in ``(U_high, U_degr]``.
    u_degr:
        Ceiling on utilization during degradation; must be < 1 so demands
        are still satisfied within their measurement interval.
    t_degr_minutes:
        Optional limit on *contiguous* degraded time. ``None`` means no
        time-contiguity constraint.
    epochs_per_day:
        Optional budget on the *number* of degraded epochs (maximal
        contiguous degraded runs) intersecting any one day — the
        enhancement the paper's footnote 2 suggests. ``None`` disables
        the budget.
    """

    m_degr_percent: Percent
    u_degr: Fraction01
    t_degr_minutes: Optional[float] = None
    epochs_per_day: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.m_degr_percent < 100.0:
            raise QoSSpecificationError(
                f"M_degr must be in [0, 100), got {self.m_degr_percent}"
            )
        if not 0.0 < self.u_degr < 1.0:
            raise QoSSpecificationError(
                f"U_degr must be in (0, 1), got {self.u_degr}"
            )
        if self.t_degr_minutes is not None and self.t_degr_minutes <= 0:
            raise QoSSpecificationError(
                f"T_degr must be > 0 minutes when given, got {self.t_degr_minutes}"
            )
        if self.epochs_per_day is not None and self.epochs_per_day < 0:
            raise QoSSpecificationError(
                f"epochs_per_day must be >= 0 when given, "
                f"got {self.epochs_per_day}"
            )

    @property
    def compliance_percent(self) -> Percent:
        """``M``: the percentage of measurements that must be acceptable."""
        return 100.0 - self.m_degr_percent

    @property
    def compliance_fraction(self) -> Fraction01:
        """``M`` as a fraction in [0, 1] — the form budget math consumes."""
        return (100.0 - self.m_degr_percent) / 100.0

    @property
    def m_degr_fraction(self) -> Fraction01:
        """``M_degr`` as a fraction in [0, 1] (``m_degr_percent / 100``)."""
        return self.m_degr_percent / 100.0


@dataclass(frozen=True)
class ApplicationQoS:
    """One mode's complete QoS requirement: acceptable band + degradation.

    ``degraded=None`` means no degradation is tolerated: every
    observation must meet the acceptable band (``M_degr = 0``).
    """

    acceptable: QoSRange
    degraded: Optional[DegradedSpec] = None

    def __post_init__(self) -> None:
        if self.degraded is not None and self.degraded.u_degr < self.acceptable.u_high:
            raise QoSSpecificationError(
                f"U_degr ({self.degraded.u_degr}) must be >= U_high "
                f"({self.acceptable.u_high})"
            )

    @property
    def u_low(self) -> Fraction01:
        return self.acceptable.u_low

    @property
    def u_high(self) -> Fraction01:
        return self.acceptable.u_high

    @property
    def u_degr(self) -> Optional[Fraction01]:
        return self.degraded.u_degr if self.degraded is not None else None

    @property
    def m_degr_percent(self) -> Percent:
        return self.degraded.m_degr_percent if self.degraded is not None else 0.0

    @property
    def m_degr_fraction(self) -> Fraction01:
        """``M_degr`` as a fraction in [0, 1]: the degraded-budget form.

        Budget comparisons against measured fractions must use this
        (or an explicit ``/ 100.0``), never the raw percentage.
        """
        return self.m_degr_percent / 100.0

    @property
    def t_degr_minutes(self) -> Optional[float]:
        return self.degraded.t_degr_minutes if self.degraded is not None else None

    @property
    def epochs_per_day(self) -> Optional[int]:
        return self.degraded.epochs_per_day if self.degraded is not None else None

    def with_degraded(self, degraded: Optional[DegradedSpec]) -> "ApplicationQoS":
        return ApplicationQoS(self.acceptable, degraded)


@dataclass(frozen=True)
class QoSPolicy:
    """Normal-mode and failure-mode requirements for one application.

    ``failure=None`` means the application must keep its normal-mode QoS
    even when a server has failed (the most demanding policy, typically
    forcing a spare server).
    """

    normal: ApplicationQoS
    failure: Optional[ApplicationQoS] = None

    def mode(self, failure_mode: bool) -> ApplicationQoS:
        """The requirement in force for the requested operating mode."""
        if failure_mode and self.failure is not None:
            return self.failure
        return self.normal


def case_study_qos(
    m_degr_percent: Percent = 3.0,
    t_degr_minutes: Optional[float] = None,
    u_low: Fraction01 = 0.5,
    u_high: Fraction01 = 0.66,
    u_degr: Fraction01 = 0.9,
) -> ApplicationQoS:
    """The paper's case-study requirement with configurable relaxations.

    Defaults reproduce Section VII: acceptable utilization in
    ``(0.5, 0.66)`` for 97% of measurements, degraded utilization at most
    0.9 for the rest. ``m_degr_percent=0`` yields the strict variant used
    by Table I cases 1 and 4.
    """
    degraded = None
    if m_degr_percent > 0:
        degraded = DegradedSpec(
            m_degr_percent=m_degr_percent,
            u_degr=u_degr,
            t_degr_minutes=t_degr_minutes,
        )
    return ApplicationQoS(QoSRange(u_low, u_high), degraded)
