"""The ``M_degr`` percentile relaxation (Section V, step 2).

Allowing ``M_degr`` percent of measurements to run degraded (utilization
in ``(U_high, U_degr]``) lets the maximum allocation be sized from the
``M``-th percentile of demand instead of the peak — usually a large
saving for bursty workloads. Two conditions compete:

* acceptable performance needs a maximum allocation of at least
  ``A_ok = D_M% / U_high`` (formula 2's precondition);
* degraded performance needs at least ``A_degr = D_max / U_degr``
  (demand at the peak must still see utilization <= ``U_degr``).

The effective demand cap ``D_new_max`` is whichever is larger (formulas
2-3), and the saving is bounded by formula 5:
``MaxCapReduction <= 1 - U_high / U_degr`` independent of the workload.
"""

from __future__ import annotations

import numpy as np

from repro.core.qos import ApplicationQoS
from repro.exceptions import QoSSpecificationError
from repro.traces.trace import DemandTrace


def new_max_demand(demand: DemandTrace, qos: ApplicationQoS) -> float:
    """``D_new_max``: the demand cap implied by the M_degr relaxation.

    Without a degraded spec (``M_degr = 0``) the cap is simply the peak
    demand ``D_max``. With one, formulas 2-3 of the paper apply:

    * if ``A_ok >= A_degr``, the ``M``-th percentile demand already
      provides enough allocation for the degraded tail:
      ``D_new_max = D_M%``;
    * otherwise the degraded ceiling binds:
      ``D_new_max = D_max * U_high / U_degr``.
    """
    d_max = demand.peak()
    if qos.degraded is None or qos.degraded.m_degr_percent == 0:
        return d_max
    spec = qos.degraded
    # "higher" guarantees at most M_degr percent of observations lie
    # strictly above the returned value, so the degraded budget holds
    # exactly (linear interpolation can leave a hair more above the cap).
    d_m_percentile = demand.percentile(spec.compliance_percent, method="higher")
    a_ok = d_m_percentile / qos.u_high
    a_degr = d_max / spec.u_degr
    if a_ok >= a_degr:
        return d_m_percentile
    return d_max * qos.u_high / spec.u_degr


def max_cap_reduction_bound(u_high: float, u_degr: float) -> float:
    """Formula 5: the workload-independent bound on capacity reduction.

    >>> round(max_cap_reduction_bound(0.66, 0.9), 4)
    0.2667
    """
    if not 0 < u_high <= u_degr:
        raise QoSSpecificationError(
            f"need 0 < U_high <= U_degr, got U_high={u_high}, U_degr={u_degr}"
        )
    if u_degr >= 1.0:
        raise QoSSpecificationError(f"U_degr must be < 1, got {u_degr}")
    return 1.0 - u_high / u_degr


def realized_cap_reduction(demand: DemandTrace, d_new_max: float) -> float:
    """Formula 4: the reduction actually achieved for one workload.

    ``(D_max - D_new_max) / D_max``; clamped at 0 when the ``T_degr``
    analysis pushed the cap back above the raw peak. Returns 0 for an
    all-zero trace.
    """
    d_max = demand.peak()
    if d_max == 0:
        return 0.0
    if d_new_max < 0:
        raise QoSSpecificationError(f"D_new_max must be >= 0, got {d_new_max}")
    return max(0.0, (d_max - d_new_max) / d_max)


def degraded_fraction(
    demand_values: np.ndarray,
    utilization: np.ndarray,
    u_high: float,
) -> float:
    """Fraction of observations with utilization above ``U_high``.

    ``demand_values`` is accepted alongside the utilization series so
    zero-demand slots (where utilization is 0 by convention) never count.
    """
    demand_values = np.asarray(demand_values, dtype=float)
    utilization = np.asarray(utilization, dtype=float)
    if demand_values.shape != utilization.shape:
        raise QoSSpecificationError(
            "demand and utilization series must have matching shapes"
        )
    if utilization.size == 0:
        return 0.0
    degraded = (utilization > u_high) & (demand_values > 0)
    return float(np.count_nonzero(degraded)) / utilization.size
