"""Portfolio-style demand partitioning across two CoS (Section V, step 1).

The breakpoint fraction ``p`` divides an application's demand between the
guaranteed class CoS1 and the multiplexed class CoS2 so that, even when
CoS2 delivers only its committed access probability ``theta``, the
application's utilization of allocation stays within ``[U_low, U_high]``.

Derivation (formula 1 of the paper): the ideal allocation is
``A_ideal = D_max / U_low`` and the worst acceptable allocation is
``A_ok = D_max / U_high``. Requiring the worst-case granted allocation
``A_ideal * p + A_ideal * (1 - p) * theta`` to equal ``A_ok`` yields::

    p = (U_low / U_high - theta) / (1 - theta)

with ``p = 0`` whenever ``U_low / U_high <= theta`` (CoS2 alone is
reliable enough) and ``p = 1`` when ``theta -> 1`` is approached from a
ratio above it (degenerate; handled by the theta == 1 branch).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import PartitionError
from repro.units import CpuShares, Fraction01, Probability
from repro.util.floats import isclose
from repro.util.validation import require_fraction, require_positive


def breakpoint_fraction(
    u_low: Fraction01, u_high: Fraction01, theta: Probability
) -> Fraction01:
    """Formula 1: the fraction ``p`` of peak demand assigned to CoS1.

    ``theta`` is accepted on the **closed** interval ``(0, 1]``: a pool
    may commit ``theta = 1.0`` (CoS2 as reliable as CoS1), and because
    the formula's ``1 - theta`` divisor is singular there, any theta
    within ``METRIC_ATOL`` of 1 short-circuits to ``p = 0`` *before*
    the division (``ratio = U_low / U_high <= 1 ~= theta``, so CoS2
    alone suffices). ``theta = 0.0`` is rejected: a class of service
    that never grants access cannot carry demand.

    >>> round(breakpoint_fraction(0.5, 0.66, 0.6), 4)
    0.3939
    >>> breakpoint_fraction(0.5, 0.66, 0.8)
    0.0
    """
    u_low = require_positive(u_low, "u_low")
    u_high = require_positive(u_high, "u_high")
    if u_low > u_high:
        raise PartitionError(f"U_low ({u_low}) must not exceed U_high ({u_high})")
    if not 0.0 < theta <= 1.0:
        raise PartitionError(f"theta must be in (0, 1], got {theta}")
    ratio = u_low / u_high
    if ratio <= theta:
        # CoS2's access probability alone keeps utilization acceptable.
        return 0.0
    if isclose(theta, 1.0):
        # ratio > theta is (numerically) impossible at theta ~= 1
        # (ratio <= 1); guarding here also keeps the 1 - theta divisor
        # below from blowing up on a theta within rounding of 1.
        return 0.0
    p = (ratio - theta) / (1.0 - theta)
    # Clamp tiny floating-point excursions.
    return float(min(1.0, max(0.0, p)))


def partition_demand(
    demand_values: np.ndarray,
    demand_cap: CpuShares,
    breakpoint_demand: CpuShares,
) -> tuple[np.ndarray, np.ndarray]:
    """Split a demand series across CoS1 and CoS2.

    Parameters
    ----------
    demand_values:
        Raw demand observations.
    demand_cap:
        ``D_new_max``: the cap limiting the maximum allocation (peak
        demand, possibly reduced by the ``M_degr`` relaxation or raised
        back by the ``T_degr`` analysis). Demand above the cap receives
        the cap's allocation — that is what produces controlled
        degradation.
    breakpoint_demand:
        ``p x D_new_max``: demand up to this value rides in CoS1.

    Returns ``(cos1, cos2)`` arrays with ``cos1 + cos2 ==
    min(demand, demand_cap)`` element-wise.

    >>> import numpy as np
    >>> cos1, cos2 = partition_demand(np.array([1.0, 4.0, 10.0]), 8.0, 3.0)
    >>> cos1.tolist(), cos2.tolist()
    ([1.0, 3.0, 3.0], [0.0, 1.0, 5.0])
    """
    values = np.asarray(demand_values, dtype=float)
    if values.ndim != 1:
        raise PartitionError(f"demand must be 1-D, got shape {values.shape}")
    if demand_cap < 0:
        raise PartitionError(f"demand_cap must be >= 0, got {demand_cap}")
    if not 0.0 <= breakpoint_demand <= demand_cap + 1e-12:
        raise PartitionError(
            f"breakpoint demand ({breakpoint_demand}) must be in "
            f"[0, demand_cap={demand_cap}]"
        )
    capped = np.minimum(values, demand_cap)
    cos1 = np.minimum(capped, breakpoint_demand)
    cos2 = capped - cos1
    return cos1, cos2


def worst_case_granted_allocation(
    cos1_demand: np.ndarray,
    cos2_demand: np.ndarray,
    theta: Probability,
    u_low: Fraction01,
) -> np.ndarray:
    """Expected allocation granted when CoS2 delivers exactly ``theta``.

    CoS1 demand is always granted; CoS2 demand is granted with
    probability ``theta``; the burst factor ``1 / U_low`` converts demand
    to allocation. This is the quantity the degraded-performance
    classification in the ``T_degr`` analysis is computed against
    (formula 8 of the paper).
    """
    theta = 1.0 if isclose(theta, 1.0) else require_fraction(theta, "theta")
    u_low = require_positive(u_low, "u_low")
    cos1 = np.asarray(cos1_demand, dtype=float)
    cos2 = np.asarray(cos2_demand, dtype=float)
    return (cos1 + cos2 * theta) / u_low
