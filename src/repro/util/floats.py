"""Tolerance-aware float comparisons shared by the metrics and core layers.

Thresholds throughout the pipeline (``U_high``, ``M_degr`` budgets,
``theta`` commitments, measured fractions) are accumulated floats, so
raw ``==``/``!=`` against them is fragile: a fraction assembled from
8064 five-minute slots can miss ``0.0`` by one ulp and silently flip a
compliance verdict. Every metric-style comparison routes through these
helpers instead; the ``no-float-equality`` rule of
:mod:`repro.analysis` enforces that convention statically.
"""

from __future__ import annotations

import math

#: Absolute tolerance for metric/threshold comparisons. Measured
#: fractions are multiples of ``1/n`` with ``n`` in the thousands, so
#: ``1e-9`` is far below the smallest meaningful difference while
#: absorbing accumulated rounding error.
METRIC_ATOL: float = 1e-9


def isclose(a: float, b: float, *, atol: float = METRIC_ATOL) -> bool:
    """True when ``a`` and ``b`` differ by at most ``atol``.

    Absolute (not relative) tolerance: the quantities compared here are
    fractions, probabilities, and utilizations of order one, where an
    absolute epsilon is the meaningful notion of "equal".

    >>> isclose(0.1 + 0.2, 0.3)
    True
    >>> isclose(0.3, 0.31)
    False
    """
    return math.isclose(a, b, rel_tol=0.0, abs_tol=atol)


def is_zero(value: float, *, atol: float = METRIC_ATOL) -> bool:
    """True when ``value`` is zero up to ``atol``.

    >>> is_zero(0.0)
    True
    >>> is_zero(1e-12)
    True
    >>> is_zero(0.001)
    False
    """
    return abs(value) <= atol


def at_most(value: float, limit: float, *, atol: float = METRIC_ATOL) -> bool:
    """True when ``value <= limit`` up to ``atol`` of slack.

    The standard shape of every budget clause in the paper's formulas
    (degraded fraction vs ``M_degr``, run minutes vs ``T_degr``).

    >>> at_most(0.03 + 1e-12, 0.03)
    True
    >>> at_most(0.031, 0.03)
    False
    """
    return value <= limit + atol
