"""Plain-text table rendering for reports and benchmark output.

The benchmark harness prints the same rows the paper's Table I reports;
this module renders them without third-party dependencies.
"""

from __future__ import annotations

from typing import Any, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Floats are formatted with ``float_format``; everything else with
    ``str``. Columns are right-aligned for numbers and left-aligned for
    text, following the first data row's types.

    >>> print(format_table(["name", "n"], [["a", 1], ["bb", 22]]))
    name |  n
    -----+---
    a    |  1
    bb   | 22
    """
    rendered_rows = [
        [_render_cell(cell, float_format) for cell in row] for row in rows
    ]
    header_cells = [str(header) for header in headers]
    if any(len(row) != len(header_cells) for row in rendered_rows):
        raise ValueError("all rows must have the same number of cells as headers")

    widths = [len(cell) for cell in header_cells]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    numeric = _numeric_columns(rows, len(header_cells))

    def fmt(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            if numeric[index]:
                parts.append(cell.rjust(widths[index]))
            else:
                parts.append(cell.ljust(widths[index]))
        return " | ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(header_cells))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(fmt(row) for row in rendered_rows)
    return "\n".join(lines)


def _render_cell(cell: Any, float_format: str) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return float_format.format(cell)
    return str(cell)


def _numeric_columns(rows: Sequence[Sequence[Any]], n_columns: int) -> list[bool]:
    numeric = [True] * n_columns
    for row in rows:
        for index, cell in enumerate(row):
            if not isinstance(cell, (int, float)) or isinstance(cell, bool):
                numeric[index] = False
    if not rows:
        return [False] * n_columns
    return numeric
