"""Deterministic random-number plumbing.

Every stochastic component in the library (workload generation, the genetic
search) takes either an integer seed or a :class:`numpy.random.Generator`.
These helpers centralise the conversion so experiments are reproducible from
a single root seed.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def derive_rng(seed: RngLike) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    ``None`` yields a fresh nondeterministic generator; an ``int`` seeds a
    PCG64 generator; an existing generator is passed through unchanged (the
    caller keeps ownership of its state).
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(int(seed))


class SeedSequenceFactory:
    """Spawn reproducible child generators from a single root seed.

    Used when one experiment needs many independent random streams (one per
    synthetic application, one for the placement search, ...) that must not
    interact, yet must all be reproducible from the root seed.

    >>> factory = SeedSequenceFactory(42)
    >>> a = factory.generator("app-0")
    >>> b = factory.generator("app-1")
    >>> a is not b
    True
    """

    def __init__(self, root_seed: Optional[int] = None):
        self._root = np.random.SeedSequence(root_seed)
        self.root_seed = root_seed

    def generator(self, *labels: Union[str, int]) -> np.random.Generator:
        """Return a generator keyed by a label path.

        The same labels always produce the same stream for a given root
        seed; distinct labels produce statistically independent streams.
        """
        entropy = [_label_entropy(label) for label in labels]
        child = np.random.SeedSequence(
            entropy=self._root.entropy, spawn_key=tuple(entropy)
        )
        return np.random.default_rng(child)

    def generators(self, labels: Iterable[Union[str, int]]) -> list[np.random.Generator]:
        """Return one independent generator per label."""
        return [self.generator(label) for label in labels]


def _label_entropy(label: Union[str, int]) -> int:
    if isinstance(label, int):
        return label & 0xFFFFFFFF
    # Stable, platform-independent hash of the string label.
    acc = 2166136261
    for byte in str(label).encode("utf-8"):
        acc = (acc ^ byte) * 16777619 & 0xFFFFFFFF
    return acc
