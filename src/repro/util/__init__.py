"""Shared utilities: seeded randomness, validation, and table rendering."""

from repro.util.rng import SeedSequenceFactory, derive_rng
from repro.util.tables import format_table
from repro.util.validation import (
    require_fraction,
    require_in_range,
    require_non_negative,
    require_positive,
    require_probability,
)

__all__ = [
    "SeedSequenceFactory",
    "derive_rng",
    "format_table",
    "require_fraction",
    "require_in_range",
    "require_non_negative",
    "require_positive",
    "require_probability",
]
