"""Shared utilities: seeded randomness, float tolerance, validation, tables."""

from repro.util.floats import METRIC_ATOL, at_most, is_zero, isclose
from repro.util.rng import SeedSequenceFactory, derive_rng
from repro.util.tables import format_table
from repro.util.validation import (
    require_fraction,
    require_in_range,
    require_non_negative,
    require_positive,
    require_probability,
)

__all__ = [
    "METRIC_ATOL",
    "SeedSequenceFactory",
    "at_most",
    "derive_rng",
    "format_table",
    "is_zero",
    "isclose",
    "require_fraction",
    "require_in_range",
    "require_non_negative",
    "require_positive",
    "require_probability",
]
