"""Argument-validation helpers used across the library.

Each helper validates one scalar and returns it unchanged so call sites can
validate inline::

    self.theta = require_probability(theta, "theta")

All helpers raise :class:`ValueError` with a message naming the offending
parameter; higher layers wrap these in domain exceptions where useful.
"""

from __future__ import annotations

import math
from typing import SupportsFloat


def _as_float(value: SupportsFloat, name: str) -> float:
    try:
        result = float(value)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"{name} must be a real number, got {value!r}") from exc
    if math.isnan(result):
        raise ValueError(f"{name} must not be NaN")
    return result


def require_positive(value: SupportsFloat, name: str) -> float:
    """Return ``value`` as float, requiring it to be strictly positive."""
    result = _as_float(value, name)
    if result <= 0:
        raise ValueError(f"{name} must be > 0, got {result}")
    return result


def require_non_negative(value: SupportsFloat, name: str) -> float:
    """Return ``value`` as float, requiring it to be >= 0."""
    result = _as_float(value, name)
    if result < 0:
        raise ValueError(f"{name} must be >= 0, got {result}")
    return result


def require_probability(value: SupportsFloat, name: str) -> float:
    """Return ``value`` as float, requiring 0 <= value <= 1."""
    result = _as_float(value, name)
    if not 0.0 <= result <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {result}")
    return result


def require_fraction(value: SupportsFloat, name: str) -> float:
    """Return ``value`` as float, requiring 0 < value < 1."""
    result = _as_float(value, name)
    if not 0.0 < result < 1.0:
        raise ValueError(f"{name} must be in (0, 1), got {result}")
    return result


def require_in_range(
    value: SupportsFloat,
    name: str,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> float:
    """Return ``value`` as float, requiring it to lie within ``[low, high]``.

    With ``inclusive=False`` the bounds are exclusive on both ends.
    """
    result = _as_float(value, name)
    if inclusive:
        ok = low <= result <= high
        bounds = f"[{low}, {high}]"
    else:
        ok = low < result < high
        bounds = f"({low}, {high})"
    if not ok:
        raise ValueError(f"{name} must be in {bounds}, got {result}")
    return result
