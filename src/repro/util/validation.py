"""Argument-validation helpers used across the library.

Each helper validates one scalar and returns it unchanged so call sites can
validate inline::

    self.theta = require_probability(theta, "theta")

All helpers raise :class:`ValueError` with a message naming the offending
parameter; higher layers wrap these in domain exceptions where useful.

Boundary conventions
--------------------
The two unit-bearing helpers deliberately accept *different* intervals,
and the difference is load-bearing:

* :func:`require_fraction` accepts the **open** interval ``(0, 1)`` —
  both endpoints excluded. It guards quantities that appear as divisors
  or in ``1 - x`` denominators (``U_low`` in the burst factor
  ``1 / U_low``; ``theta`` in formula 1's ``1 - theta`` divisor), where
  either endpoint would divide by zero.
* :func:`require_probability` accepts the **closed** interval
  ``[0, 1]`` — both endpoints included. A commitment of ``theta = 1.0``
  (dedicated capacity, CoS1-only) and ``theta = 0.0`` (no commitment)
  are both meaningful probabilities.

Call sites that accept ``theta = 1.0`` but later divide by
``1 - theta`` must branch *before* the division — see
:func:`repro.core.partition.breakpoint_fraction`, which short-circuits
via ``repro.util.floats.isclose(theta, 1.0)`` so values within
``METRIC_ATOL`` of 1 never reach the ``1 - theta`` divisor.

The corresponding :mod:`repro.units` markers declare the *closed*
domains (``Fraction01`` and ``Probability`` are both ``[0, 1]``): a
successful ``require_fraction`` call proves membership in a strict
subset of ``Fraction01``'s domain, so the static dataflow rules treat
both helpers as establishing their unit.
"""

from __future__ import annotations

import math
from typing import SupportsFloat

from repro.units import Fraction01, Probability


def _as_float(value: SupportsFloat, name: str) -> float:
    try:
        result = float(value)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"{name} must be a real number, got {value!r}") from exc
    if math.isnan(result):
        raise ValueError(f"{name} must not be NaN")
    return result


def require_positive(value: SupportsFloat, name: str) -> float:
    """Return ``value`` as float, requiring it to be strictly positive.

    Half-open domain ``(0, inf)``: zero is rejected because callers use
    the result as a divisor or scale factor.
    """
    result = _as_float(value, name)
    if result <= 0:
        raise ValueError(f"{name} must be > 0, got {result}")
    return result


def require_non_negative(value: SupportsFloat, name: str) -> float:
    """Return ``value`` as float, requiring it to be >= 0.

    Half-open domain ``[0, inf)``: zero is a valid amount (no demand,
    no allocation), unlike :func:`require_positive`.
    """
    result = _as_float(value, name)
    if result < 0:
        raise ValueError(f"{name} must be >= 0, got {result}")
    return result


def require_probability(value: SupportsFloat, name: str) -> Probability:
    """Return ``value`` as float, requiring 0 <= value <= 1.

    **Closed** interval ``[0, 1]``: the endpoints are meaningful
    probabilities (never / always), so they are accepted. Contrast with
    :func:`require_fraction`. No tolerance is applied: a value within
    ``METRIC_ATOL`` *outside* the interval (e.g. ``1 + 1e-12``) is
    still rejected — clamp explicitly at the call site if accumulated
    rounding can push a probability out of range.
    """
    result = _as_float(value, name)
    if not 0.0 <= result <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {result}")
    return result


def require_fraction(value: SupportsFloat, name: str) -> Fraction01:
    """Return ``value`` as float, requiring 0 < value < 1.

    **Open** interval ``(0, 1)``: both endpoints are excluded because
    fraction-typed parameters feed divisions (``1 / U_low``,
    ``1 - theta``). Endpoint values within ``METRIC_ATOL`` of 0 or 1
    are *accepted* (e.g. ``1 - 1e-12`` passes); callers whose formulas
    are singular at an endpoint must additionally guard with
    ``repro.util.floats.isclose``, as
    :func:`repro.core.partition.breakpoint_fraction` does for
    ``theta == 1.0``.
    """
    result = _as_float(value, name)
    if not 0.0 < result < 1.0:
        raise ValueError(f"{name} must be in (0, 1), got {result}")
    return result


def require_in_range(
    value: SupportsFloat,
    name: str,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> float:
    """Return ``value`` as float, requiring it to lie within ``[low, high]``.

    With ``inclusive=False`` the bounds are exclusive on both ends.
    """
    result = _as_float(value, name)
    if inclusive:
        ok = low <= result <= high
        bounds = f"[{low}, {high}]"
    else:
        ok = low < result < high
        bounds = f"({low}, {high})"
    if not ok:
        raise ValueError(f"{name} must be in {bounds}, got {result}")
    return result
