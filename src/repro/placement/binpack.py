"""Scalar bin-packing baseline (the ILP stand-in from related work).

The authors' earlier consolidation work packed workloads by *peak*
demand with an Integer Linear Programming bin-packing formulation and
found it computationally impractical for ongoing management
(Section VIII). This module reproduces that comparator:

* items are per-workload peak allocations (a scalar — no statistical
  multiplexing, no time structure);
* :func:`pack_first_fit_decreasing` is the classic 11/9-approximation;
* :func:`pack_branch_and_bound` is an exact solver practical for small
  instances, standing in for the ILP.

Because peak-based packing must reserve every workload's peak
simultaneously, it needs substantially more servers than the
trace-driven R-Opus placement — which is precisely the comparison the
ablation benchmark draws.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import InfeasiblePlacementError, PlacementError


@dataclass(frozen=True)
class PackingResult:
    """A scalar bin-packing solution."""

    bins: tuple[tuple[int, ...], ...]
    capacity: float
    optimal: bool

    @property
    def n_bins(self) -> int:
        return len(self.bins)


def _validate(sizes: Sequence[float], capacity: float) -> list[float]:
    if capacity <= 0:
        raise PlacementError(f"bin capacity must be > 0, got {capacity}")
    values = [float(size) for size in sizes]
    for index, size in enumerate(values):
        if size < 0:
            raise PlacementError(f"item {index} has negative size {size}")
        if size > capacity:
            raise InfeasiblePlacementError(
                f"item {index} (size {size}) exceeds bin capacity {capacity}"
            )
    return values


def lower_bound(sizes: Sequence[float], capacity: float) -> int:
    """The volume lower bound ``ceil(sum(sizes) / capacity)``."""
    values = _validate(sizes, capacity)
    if not values:
        return 0
    total = sum(values)
    bound = math.ceil(total / capacity - 1e-9)
    return max(bound, 1 if total > 0 else 0)


def pack_first_fit_decreasing(
    sizes: Sequence[float], capacity: float
) -> PackingResult:
    """First-fit decreasing packing of scalar items."""
    values = _validate(sizes, capacity)
    order = sorted(range(len(values)), key=lambda index: -values[index])
    bins: list[list[int]] = []
    # Slack per open bin as a preallocated array: the first-fit scan is
    # one vectorised comparison + argmax instead of a Python loop over
    # bins (the scan is the quadratic part of FFD).
    remaining = np.empty(len(values), dtype=float)
    n_bins = 0
    for index in order:
        size = values[index]
        open_slack = remaining[:n_bins]
        fits = size <= open_slack + 1e-9
        if fits.any():
            bin_index = int(np.argmax(fits))
            bins[bin_index].append(index)
            remaining[bin_index] -= size
        else:
            bins.append([index])
            remaining[n_bins] = capacity - size
            n_bins += 1
    return PackingResult(
        bins=tuple(tuple(sorted(group)) for group in bins),
        capacity=capacity,
        optimal=len(bins) == lower_bound(values, capacity),
    )


def pack_branch_and_bound(
    sizes: Sequence[float],
    capacity: float,
    max_nodes: int = 200_000,
) -> PackingResult:
    """Exact bin packing by depth-first branch and bound.

    Items are considered largest-first; each is tried in every open bin
    with room (skipping bins with identical slack) and then in a new
    bin. The search prunes on the volume lower bound and an incumbent
    from first-fit decreasing. ``max_nodes`` caps the exploration — when
    exhausted the incumbent is returned with ``optimal=False``, which is
    exactly the impracticality the paper reports for ILP solutions on
    larger instances.
    """
    values = _validate(sizes, capacity)
    if not values:
        return PackingResult(bins=(), capacity=capacity, optimal=True)
    incumbent = pack_first_fit_decreasing(values, capacity)
    best_bins = [list(group) for group in incumbent.bins]
    best_count = incumbent.n_bins
    floor = lower_bound(values, capacity)
    if best_count == floor:
        return PackingResult(
            bins=incumbent.bins, capacity=capacity, optimal=True
        )

    order = sorted(range(len(values)), key=lambda index: -values[index])
    nodes_left = max_nodes
    proven = True

    current_bins: list[list[int]] = []
    current_slack: list[float] = []
    # Suffix volumes of the (fixed) item order, so the volume bound at
    # each node is an O(1) lookup instead of an O(n) re-summation —
    # the bound is checked once per node explored.
    suffix_volume = [0.0] * (len(order) + 1)
    for index in range(len(order) - 1, -1, -1):
        suffix_volume[index] = suffix_volume[index + 1] + values[order[index]]

    def recurse(position: int) -> None:
        nonlocal best_count, best_bins, nodes_left, proven
        if nodes_left <= 0:
            proven = False
            return
        nodes_left -= 1
        if len(current_bins) >= best_count:
            return
        if position == len(order):
            best_count = len(current_bins)
            best_bins = [list(group) for group in current_bins]
            return
        # Volume bound on the remainder.
        remaining_volume = suffix_volume[position]
        slack_volume = sum(current_slack)
        extra_needed = math.ceil(
            max(0.0, remaining_volume - slack_volume) / capacity - 1e-9
        )
        if len(current_bins) + extra_needed >= best_count:
            return
        item = order[position]
        size = values[item]
        seen_slacks: set[float] = set()
        for bin_index in range(len(current_bins)):
            slack = current_slack[bin_index]
            if size > slack + 1e-9:
                continue
            slack_key = round(slack, 9)
            if slack_key in seen_slacks:
                continue
            seen_slacks.add(slack_key)
            current_bins[bin_index].append(item)
            current_slack[bin_index] -= size
            recurse(position + 1)
            current_slack[bin_index] += size
            current_bins[bin_index].pop()
        if len(current_bins) + 1 < best_count:
            current_bins.append([item])
            current_slack.append(capacity - size)
            recurse(position + 1)
            current_bins.pop()
            current_slack.pop()

    recurse(0)
    return PackingResult(
        bins=tuple(tuple(sorted(group)) for group in best_bins),
        capacity=capacity,
        optimal=proven or best_count == floor,
    )
