"""Greedy placement baselines.

The paper compares its genetic search against greedy algorithms
(Section VIII). Two classics are provided, both driven by the same
trace-accurate feasibility test as the genetic search (a workload set
fits on a server iff its required capacity is within the server's
limit):

* **first-fit decreasing** — workloads sorted by peak allocation, each
  placed on the first server that still fits it;
* **best-fit decreasing** — each workload placed on the feasible server
  whose required capacity would become largest (tightest fit), packing
  servers hot before opening new ones.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.exceptions import InfeasiblePlacementError
from repro.placement.evaluation import PlacementEvaluator
from repro.resources.pool import ResourcePool

Assignment = tuple[int, ...]


def first_fit_decreasing(
    evaluator: PlacementEvaluator,
    pool: ResourcePool,
    attribute: str = "cpu",
) -> Assignment:
    """Place each workload (largest peak first) on the first fitting server."""

    def choose(
        feasible: list[tuple[int, float]], current_groups: dict[int, list[int]]
    ) -> int:
        return feasible[0][0]

    return _greedy_place(evaluator, pool, choose, attribute)


def best_fit_decreasing(
    evaluator: PlacementEvaluator,
    pool: ResourcePool,
    attribute: str = "cpu",
) -> Assignment:
    """Place each workload on the feasible server it fills tightest."""

    def choose(
        feasible: list[tuple[int, float]], current_groups: dict[int, list[int]]
    ) -> int:
        return max(feasible, key=lambda item: item[1])[0]

    return _greedy_place(evaluator, pool, choose, attribute)


def _greedy_place(
    evaluator: PlacementEvaluator,
    pool: ResourcePool,
    choose: Callable[[list[tuple[int, float]], dict[int, list[int]]], int],
    attribute: str,
) -> Assignment:
    """Shared greedy skeleton.

    Workloads are taken in decreasing order of peak total allocation.
    For each, every *already-used* server is tested first; if none fits,
    the next unused server is opened. ``choose`` picks among the feasible
    used servers given ``(server_index, required_capacity)`` candidates.
    """
    servers = list(pool.servers)
    order = np.argsort(-evaluator.peak_allocations(), kind="stable")
    groups: dict[int, list[int]] = {}
    assignment = [-1] * evaluator.n_workloads
    # All of one workload's candidate (used server + workload) subsets
    # are independent searches, so evaluate them as one batch when the
    # evaluator can (one simultaneous bisection instead of a Python loop
    # per server). Results are identical either way — the batch path
    # shares the scalar path's cache.
    batch_evaluate = getattr(evaluator, "evaluate_groups", None)

    for workload_index in (int(index) for index in order):
        used = sorted(groups)
        candidates = [groups[server_index] + [workload_index] for server_index in used]
        if batch_evaluate is not None:
            evaluations = batch_evaluate(
                [
                    (servers[server_index].capacity_of(attribute), candidate)
                    for server_index, candidate in zip(used, candidates)
                ]
            )
        else:
            evaluations = [
                evaluator.evaluate_group(
                    candidate, servers[server_index], attribute
                )
                for server_index, candidate in zip(used, candidates)
            ]
        feasible = [
            (server_index, evaluation.required)
            for server_index, evaluation in zip(used, evaluations)
            if evaluation.fits
        ]
        if feasible:
            target = choose(feasible, groups)
        else:
            target = _open_new_server(
                evaluator, servers, groups, workload_index, attribute
            )
        groups.setdefault(target, []).append(workload_index)
        assignment[workload_index] = target

    return tuple(assignment)


def _open_new_server(
    evaluator: PlacementEvaluator,
    servers: Sequence,
    groups: dict[int, list[int]],
    workload_index: int,
    attribute: str,
) -> int:
    for server_index, server in enumerate(servers):
        if server_index in groups:
            continue
        evaluation = evaluator.evaluate_group(
            [workload_index], server, attribute
        )
        if evaluation.fits:
            return server_index
    raise InfeasiblePlacementError(
        f"workload {evaluator.names[workload_index]!r} fits on no remaining "
        "server; the pool is too small or the workload exceeds every "
        "server's capacity"
    )
