"""Batched capacity-search kernels (Section VI-A, vectorised over rows).

The placement loop's dominant cost is the required-capacity binary
search: every candidate server subset runs dozens of
:meth:`~repro.placement.simulator.SingleServerSimulator.evaluate` calls,
each a handful of numpy operations on one length-``T`` trace plus Python
dispatch overhead. This module batches that work two ways:

* :class:`BatchSimulator` stacks the aggregate per-subset traces into
  ``(N, T)`` matrices and hoists every capacity-independent term (CoS1
  peaks, theta denominators, CoS2 arrival cumsums) so one kernel call
  measures all pending subsets, each at its own candidate capacity, in
  a single vectorised pass;
* :func:`required_capacity_batch` is a **simultaneous bisection**: the
  low/high brackets of all pending subsets advance as parallel arrays,
  one batched kernel call halving every bracket per iteration, instead
  of ``N`` independent scalar Python loops.

Row ``i`` of a batched evaluation is bit-identical to the scalar
``SingleServerSimulator.evaluate``/:func:`~repro.placement.required_capacity.required_capacity`
path: the kernels perform the same floating-point operations in the
same order, only with a leading batch axis.

Warm starts are *probes*, not bracket clamps. Required capacity is
monotone in **capacity** (more capacity can only help — this is what
makes bisection sound) but **not** in the workload subset: adding a
workload that is fully satisfied in the binding slot raises that slot's
satisfied/requested ratio, so a superset can legitimately need *less*
capacity than one of its subsets. A parent evaluation therefore only
yields a guess, and :func:`required_capacity_batch` spends one batched
kernel row verifying each guess before trusting it as a bracket.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.cos import CoSCommitment
from repro.exceptions import SimulationError
from repro.placement.required_capacity import (
    DEFAULT_TOLERANCE,
    RequiredCapacityResult,
)
from repro.placement.simulator import AccessReport, SingleServerSimulator
from repro.traces.calendar import DAYS_PER_WEEK, TraceCalendar
from repro.units import CpuShares

_EPSILON = 1e-9
_THETA_SLACK = 1e-12

#: ``max_deferred_slots`` value for rows whose deferral measurement was
#: skipped because CoS1 or theta already failed (the row cannot satisfy
#: the commitment regardless, so the FIFO drain is never needed).
DEFERRED_NOT_MEASURED = -1


@dataclass(frozen=True)
class BatchAccessReport:
    """Access statistics for K (trace row, capacity) pairings.

    The arrays all share one leading axis; :meth:`report` materialises
    one row as a scalar :class:`~repro.placement.simulator.AccessReport`.

    ``deferred_exact`` is ``False`` for decision-only evaluations where
    the deferral was measured as a cheap deadline pass/fail instead of
    the exact FIFO drain; :meth:`satisfies` is still correct but
    :meth:`report` refuses to materialise such rows.
    """

    capacities: np.ndarray
    cos1_fits: np.ndarray
    cos1_peaks: np.ndarray
    theta_measured: np.ndarray
    max_deferred_slots: np.ndarray
    cos2_demand_totals: np.ndarray
    cos2_satisfied_on_request: np.ndarray
    deferred_exact: bool = True

    def __len__(self) -> int:
        return int(self.capacities.shape[0])

    def satisfies(
        self, commitment: CoSCommitment, calendar: TraceCalendar
    ) -> np.ndarray:
        """Vectorised :meth:`AccessReport.satisfies` over every row.

        Rows with an unmeasured deferral (see
        :data:`DEFERRED_NOT_MEASURED`) already failed CoS1 or theta, so
        the deadline term never decides them.
        """
        deadline = commitment.deadline_slots(calendar)
        theta_ok = ~(self.theta_measured < commitment.theta - _THETA_SLACK)
        return (
            self.cos1_fits
            & theta_ok
            & (self.max_deferred_slots <= deadline)
        )

    def report(self, row: int) -> AccessReport:
        """Row ``row`` as a scalar :class:`AccessReport`."""
        if not self.deferred_exact:
            raise SimulationError(
                "this evaluation only measured a deadline pass/fail; "
                "re-evaluate without decision_deadline to report it"
            )
        deferred = int(self.max_deferred_slots[row])
        if deferred == DEFERRED_NOT_MEASURED:
            raise SimulationError(
                "deferral was not measured for this row (CoS1 or theta "
                "already failed under a gated evaluation)"
            )
        return AccessReport(
            capacity=float(self.capacities[row]),
            cos1_fits=bool(self.cos1_fits[row]),
            cos1_peak=float(self.cos1_peaks[row]),
            theta_measured=float(self.theta_measured[row]),
            max_deferred_slots=deferred,
            cos2_demand_total=float(self.cos2_demand_totals[row]),
            cos2_satisfied_on_request=float(
                self.cos2_satisfied_on_request[row]
            ),
        )


def _batched_metrics(
    cos1: np.ndarray,
    cos2: np.ndarray,
    peaks: np.ndarray,
    requested: np.ndarray,
    positive: np.ndarray,
    arrivals_cum: np.ndarray,
    totals: np.ndarray,
    capacities: np.ndarray,
    calendar: TraceCalendar,
    gate: Optional[CoSCommitment],
    decision_deadline: Optional[int] = None,
) -> BatchAccessReport:
    """The (K, T) kernel shared by every batched entry point.

    ``cos1``/``cos2``/``requested``/``positive``/``arrivals_cum`` may be
    broadcast views (a single trace against K capacities). When ``gate``
    is given, the expensive FIFO-drain measurement is skipped for rows
    whose CoS1 or theta already misses the commitment — their
    ``max_deferred_slots`` is :data:`DEFERRED_NOT_MEASURED`.

    ``decision_deadline`` replaces the exact FIFO drain with a
    vectorised deadline pass/fail: serving is FIFO, so the wait of the
    arrival in slot ``t`` exceeds ``D`` slots iff the work served by
    slot ``t + D`` still trails the arrivals through ``t``. One shifted
    comparison per row answers ``max_deferred_slots <= D`` without any
    per-row ``searchsorted``; the report is marked ``deferred_exact =
    False`` and cannot be materialised.
    """
    rows = capacities.shape[0]
    caps_col = capacities[:, None]
    cos1_fits = peaks <= capacities + _EPSILON
    granted_cos1 = np.minimum(cos1, caps_col)
    available = np.maximum(0.0, caps_col - granted_cos1)
    satisfied_now = np.minimum(cos2, available)

    # Theta: min over weeks and slots-of-day of satisfied / requested,
    # with no-request slots counting as fully satisfied. Same reduction
    # order as the scalar path (day axis first, then the min).
    satisfied_view = satisfied_now.reshape(
        rows, calendar.weeks, DAYS_PER_WEEK, calendar.slots_per_day
    ).sum(axis=2)
    ratios = np.ones(
        (rows, calendar.weeks, calendar.slots_per_day), dtype=float
    )
    np.divide(
        satisfied_view,
        np.broadcast_to(requested, ratios.shape),
        out=ratios,
        where=np.broadcast_to(positive, ratios.shape),
    )
    theta = (
        ratios.reshape(rows, -1).min(axis=1)
        if ratios.size
        else np.ones(rows)
    )

    # Fluid FIFO backlog, one cumsum/accumulate pass for all rows.
    deficits = cos2 - available
    prefix = np.cumsum(deficits, axis=-1)
    floor = np.minimum.accumulate(np.minimum(prefix, 0.0), axis=-1)
    backlog = prefix - floor
    max_backlog = backlog.max(axis=-1, initial=0.0)

    max_deferred = np.zeros(rows, dtype=np.int64)
    backlogged = max_backlog > _EPSILON
    if gate is not None:
        passes_gates = cos1_fits & ~(theta < gate.theta - _THETA_SLACK)
        max_deferred[backlogged & ~passes_gates] = DEFERRED_NOT_MEASURED
        measure = backlogged & passes_gates
    else:
        measure = backlogged
    if decision_deadline is not None:
        deadline = int(decision_deadline)
        length = backlog.shape[-1]
        checked = np.nonzero(measure)[0]
        if checked.size and deadline < length:
            served = (
                arrivals_cum[checked, 1:] - backlog[checked]
            )
            late = np.any(
                served[:, deadline:]
                < arrivals_cum[checked, 1 : length - deadline + 1]
                - _EPSILON,
                axis=1,
            )
            max_deferred[checked[late]] = deadline + 1
    else:
        slot_index = None
        for row in np.nonzero(measure)[0]:
            arrivals = arrivals_cum[row, 1:]
            served = arrivals - backlog[row]
            if slot_index is None:
                slot_index = np.arange(arrivals.shape[0])
            first_served = np.searchsorted(
                served, arrivals - _EPSILON, side="left"
            )
            waits = first_served - slot_index
            max_deferred[row] = max(0, int(waits.max()))

    return BatchAccessReport(
        capacities=capacities,
        cos1_fits=cos1_fits,
        cos1_peaks=np.broadcast_to(peaks, (rows,)),
        theta_measured=theta,
        max_deferred_slots=max_deferred,
        cos2_demand_totals=np.broadcast_to(totals, (rows,)),
        cos2_satisfied_on_request=satisfied_now.sum(axis=-1),
        deferred_exact=decision_deadline is None,
    )


def _theta_threshold_rows(
    cos1: np.ndarray,
    cos2: np.ndarray,
    requested: np.ndarray,
    positive: np.ndarray,
    theta: float,
    calendar: TraceCalendar,
) -> np.ndarray:
    """Exact minimal capacity satisfying the theta constraint, per row.

    For one (week, slot-of-day) cell the satisfied demand
    ``f(c) = sum_d clip(c - cos1_d, 0, cos2_d)`` over the week's days is
    piecewise linear, concave and non-decreasing in the capacity ``c``,
    so the smallest ``c`` with ``f(c) >= theta * requested`` is found by
    walking the cell's ``2 * DAYS_PER_WEEK`` slope breakpoints and
    interpolating — no search. The row's theta threshold is the maximum
    over its cells. This is the closed form behind the ``analytic``
    solver mode: it replaces the theta side of the bisection entirely
    (the caller still *verifies* the candidate with one kernel
    evaluation, so float rounding here can cost iterations, never
    correctness).
    """
    rows, length = cos1.shape
    out = np.zeros(rows, dtype=float)
    if not rows or not length:
        return out
    weeks, spd = calendar.weeks, calendar.slots_per_day
    cells = weeks * spd
    days = DAYS_PER_WEEK
    a = np.ascontiguousarray(
        cos1.reshape(rows, weeks, days, spd).transpose(0, 1, 3, 2)
    ).reshape(rows, cells, days)
    b = np.ascontiguousarray(
        cos2.reshape(rows, weeks, days, spd).transpose(0, 1, 3, 2)
    ).reshape(rows, cells, days)
    target = theta * requested.reshape(rows, cells)
    live = positive.reshape(rows, cells) & (target > 0.0)
    if not bool(live.any()):
        return out

    # Prune with sandwich bounds. Upper: ``f(max(cos1 + cos2)) ==
    # requested``, so each cell's threshold is at most its largest
    # day-end ``e_max``. Lower: the unmet demand at capacity ``c`` is at
    # least ``min(e_max - c, cos2 of that day)``, so whenever the
    # tolerated slack ``(1 - theta) * requested`` is smaller than that
    # day's cos2 the threshold is at least ``e_max - slack`` — within
    # ``slack`` of the upper bound. Cells whose upper bound cannot reach
    # the row's best lower bound can never be the binding maximum; only
    # the survivors (typically a few peak-hour cells) get the exact
    # breakpoint walk.
    ends = a + b
    ceil_cell = ends.max(axis=-1)
    top = np.argmax(ends, axis=-1)[..., None]
    b_at_top = np.take_along_axis(b, top, -1)[..., 0]
    slack = target / theta - target if theta > 0 else np.inf
    tight = np.where(b_at_top > slack, ceil_cell - slack, 0.0)
    coarse = a.min(axis=-1) + target / days
    floor_cell = np.where(live, np.maximum(tight, coarse), 0.0)
    best_floor = floor_cell.max(axis=-1)
    row_idx, cell_idx = np.nonzero(
        live & (ceil_cell >= best_floor[:, None])
    )
    out[:] = np.maximum(best_floor, 0.0)

    kept_a = a[row_idx, cell_idx]
    kept_b = b[row_idx, cell_idx]
    kept_target = target[row_idx, cell_idx]
    breakpoints = np.sort(
        np.concatenate([kept_a, kept_a + kept_b], axis=-1), axis=-1
    )
    f_at = np.clip(
        breakpoints[:, :, None] - kept_a[:, None, :],
        0.0,
        kept_b[:, None, :],
    ).sum(axis=-1)
    # First breakpoint meeting the target (clamped: with theta <= 1 the
    # last breakpoint reaches the full requested demand, so an overshoot
    # can only be float noise and extrapolates the final segment; the
    # caller's verification absorbs it).
    last = breakpoints.shape[-1] - 1
    k1 = np.minimum((f_at < kept_target[:, None]).sum(axis=-1), last)[
        :, None
    ]
    k0 = np.maximum(k1 - 1, 0)
    x1 = np.take_along_axis(breakpoints, k1, -1)[:, 0]
    f1 = np.take_along_axis(f_at, k1, -1)[:, 0]
    x0 = np.take_along_axis(breakpoints, k0, -1)[:, 0]
    f0 = np.take_along_axis(f_at, k0, -1)[:, 0]
    rise = f1 - f0
    run = x1 - x0
    interpolable = (rise > 0.0) & (run > 0.0)
    with np.errstate(invalid="ignore", divide="ignore"):
        crossing = x0 + (kept_target - f0) * run / rise
    crossing = np.where(interpolable, crossing, x1)
    np.maximum.at(out, row_idx, crossing)
    return np.maximum(out, 0.0)


def evaluate_capacities(
    simulator: SingleServerSimulator, capacities: np.ndarray
) -> BatchAccessReport:
    """Measure one aggregate trace at K candidate capacities at once.

    The multi-capacity kernel behind
    :meth:`SingleServerSimulator.evaluate_batch`: row ``i`` is
    bit-identical to ``simulator.evaluate(capacities[i])``.
    """
    caps = np.asarray(capacities, dtype=float)
    if caps.ndim != 1:
        raise SimulationError(
            f"capacities must be a 1-D array, got shape {caps.shape}"
        )
    if caps.size and float(caps.min()) <= 0:
        raise SimulationError(
            f"capacity must be > 0, got {float(caps.min())}"
        )
    rows = caps.shape[0]
    length = simulator.calendar.n_observations
    return _batched_metrics(
        cos1=np.broadcast_to(simulator._cos1, (rows, length)),
        cos2=np.broadcast_to(simulator._cos2, (rows, length)),
        peaks=np.asarray(simulator._cos1_peak, dtype=float),
        requested=simulator._theta_requested[None, :, :],
        positive=simulator._theta_positive[None, :, :],
        arrivals_cum=np.broadcast_to(
            simulator._cos2_arrivals_cum, (rows, length + 1)
        ),
        totals=np.asarray(simulator._cos2_total, dtype=float),
        capacities=caps,
        calendar=simulator.calendar,
        gate=None,
    )


class BatchSimulator:
    """N stacked aggregate traces, each evaluable at its own capacity.

    The batched counterpart of building N
    :class:`SingleServerSimulator` objects: all capacity-independent
    precomputation (peaks, theta denominators, arrival cumsums) happens
    once here, vectorised over the stack.
    """

    def __init__(
        self,
        cos1_values: np.ndarray,
        cos2_values: np.ndarray,
        calendar: TraceCalendar,
    ):
        cos1 = np.ascontiguousarray(np.asarray(cos1_values, dtype=float))
        cos2 = np.ascontiguousarray(np.asarray(cos2_values, dtype=float))
        if cos1.ndim != 2 or cos2.ndim != 2:
            raise SimulationError(
                "stacked aggregate series must be 2-D (rows, observations)"
            )
        expected = (cos1.shape[0], calendar.n_observations)
        if cos1.shape != expected or cos2.shape != expected:
            raise SimulationError(
                "stacked aggregate series must match the calendar length"
            )
        self.calendar = calendar
        self._cos1 = cos1
        self._cos2 = cos2
        n, length = expected
        self.peaks = (
            cos1.max(axis=1) if length else np.zeros(n, dtype=float)
        )
        self._requested = cos2.reshape(
            n, calendar.weeks, DAYS_PER_WEEK, calendar.slots_per_day
        ).sum(axis=2)
        self._positive = self._requested > 0
        self._arrivals_cum = np.concatenate(
            [np.zeros((n, 1)), np.cumsum(cos2, axis=1)], axis=1
        )
        self.totals = cos2.sum(axis=1)
        self._theta_cache: dict[float, np.ndarray] = {}

    def theta_thresholds(self, theta: float) -> np.ndarray:
        """Per-row exact theta capacity thresholds (cached per theta)."""
        key = float(theta)
        cached = self._theta_cache.get(key)
        if cached is None:
            cached = _theta_threshold_rows(
                self._cos1,
                self._cos2,
                self._requested,
                self._positive,
                key,
                self.calendar,
            )
            self._theta_cache[key] = cached
        return cached

    @classmethod
    def from_subsets(
        cls,
        cos1_matrix: np.ndarray,
        cos2_matrix: np.ndarray,
        subsets: Sequence[Sequence[int]],
        calendar: TraceCalendar,
    ) -> "BatchSimulator":
        """Aggregate per-workload matrices over each subset's rows.

        ``subsets`` lists the (sorted) workload row indices of each
        batch row, exactly as the scalar path sums them.
        """
        length = calendar.n_observations
        cos1 = np.empty((len(subsets), length), dtype=float)
        cos2 = np.empty((len(subsets), length), dtype=float)
        for row, subset in enumerate(subsets):
            index = np.asarray(subset, dtype=int)
            cos1[row] = cos1_matrix[index].sum(axis=0)
            cos2[row] = cos2_matrix[index].sum(axis=0)
        return cls(cos1, cos2, calendar)

    @property
    def n_rows(self) -> int:
        return int(self._cos1.shape[0])

    def simulator_for(self, row: int) -> SingleServerSimulator:
        """A scalar simulator over one stacked row (testing/debugging)."""
        return SingleServerSimulator(
            self._cos1[row], self._cos2[row], self.calendar
        )

    def evaluate_rows(
        self,
        rows: Optional[np.ndarray],
        capacities: np.ndarray,
        *,
        gate: Optional[CoSCommitment] = None,
        decision_deadline: Optional[int] = None,
    ) -> BatchAccessReport:
        """Evaluate ``rows`` (``None`` = all) at per-row capacities.

        ``gate`` enables the deferral short-circuit for rows that
        already miss the commitment on CoS1 or theta, and
        ``decision_deadline`` downgrades the deferral to a cheap
        pass/fail against that deadline; see :func:`_batched_metrics`.
        """
        caps = np.asarray(capacities, dtype=float)
        if rows is None:
            index = slice(None)
            count = self.n_rows
        else:
            index = np.asarray(rows, dtype=int)
            count = int(index.shape[0])
        if caps.shape != (count,):
            raise SimulationError(
                f"need one capacity per row, got {caps.shape} for {count}"
            )
        if caps.size and float(caps.min()) <= 0:
            raise SimulationError(
                f"capacity must be > 0, got {float(caps.min())}"
            )
        return _batched_metrics(
            cos1=self._cos1[index],
            cos2=self._cos2[index],
            peaks=self.peaks[index],
            requested=self._requested[index],
            positive=self._positive[index],
            arrivals_cum=self._arrivals_cum[index],
            totals=self.totals[index],
            capacities=caps,
            calendar=self.calendar,
            gate=gate,
            decision_deadline=decision_deadline,
        )


@dataclass(frozen=True)
class BatchSearchStats:
    """Work accounting for one simultaneous capacity solve.

    ``fused_rows``/``f32_retries`` stay zero outside the fused kernel
    (:mod:`repro.placement.fused`): they count rows settled by the
    float32 fast path and rows that failed its float64 verification and
    re-ran on this batch kernel. All six fields are recorded uniformly
    by every kernel mode so counter sets stay comparable across runs.
    """

    rows: int
    kernel_calls: int
    bracket_iterations: int
    probe_hits: int
    fused_rows: int = 0
    f32_retries: int = 0


@dataclass(frozen=True)
class BatchSearchResult:
    """Per-row scalar-equivalent results plus solver work stats."""

    results: tuple[RequiredCapacityResult, ...]
    stats: BatchSearchStats


def required_capacity_batch(
    batch: BatchSimulator,
    capacity_limits: np.ndarray,
    commitment: CoSCommitment,
    tolerance: CpuShares = DEFAULT_TOLERANCE,
    probes: Optional[np.ndarray] = None,
    mode: str = "bisect",
) -> BatchSearchResult:
    """Simultaneous capacity search over every row of ``batch``.

    ``mode="bisect"`` carries the low/high brackets of all pending rows
    as parallel arrays; each iteration halves every still-open bracket
    with one batched kernel call. Without ``probes`` the result of row
    ``i`` is bit-identical to
    ``required_capacity(..., capacity_limit=capacity_limits[i])`` on the
    row's aggregate trace.

    ``mode="analytic"`` inverts the theta constraint in closed form
    (:func:`_theta_threshold_rows`), evaluates each row once at that
    candidate, and falls back to bisection only for rows where the
    deferral deadline — not theta — is the binding constraint. Every
    decision is still made by a measured kernel evaluation, so results
    stay within ``tolerance`` of the scalar path (they are no longer
    bit-identical: the analytic candidate is the exact constraint
    boundary rather than a bisection grid point).

    ``probes`` (optional, ``NaN`` = none) are warm-start capacity
    guesses, e.g. a parent assignment's required capacity for a similar
    subset. Each guess costs two verification rows in one kernel call:
    a guess ``g`` that satisfies the commitment while ``g - tolerance``
    does not finishes that row's search immediately; otherwise the
    verified side tightens the bracket. Probed rows stay within
    ``tolerance`` of the true minimum but may differ from the scalar
    path by up to ``tolerance``.
    """
    limits = np.asarray(capacity_limits, dtype=float)
    n = batch.n_rows
    if limits.shape != (n,):
        raise SimulationError(
            f"need one capacity limit per row, got {limits.shape} for {n}"
        )
    if limits.size and float(limits.min()) <= 0:
        raise SimulationError(
            f"capacity_limit must be > 0, got {float(limits.min())}"
        )
    if tolerance <= 0:
        raise SimulationError(f"tolerance must be > 0, got {tolerance}")
    if mode not in ("bisect", "analytic"):
        raise SimulationError(
            f"mode must be 'bisect' or 'analytic', got {mode!r}"
        )
    calendar = batch.calendar

    kernel_calls = 0
    bracket_iterations = 0
    probe_hits = 0
    results: list[Optional[RequiredCapacityResult]] = [None] * n
    infinity = float("inf")

    # CoS1 peaks alone exceeding the limit: no fit, no simulation.
    peaks = batch.peaks
    candidate = np.nonzero(peaks <= limits + _EPSILON)[0]
    for row in np.nonzero(peaks > limits + _EPSILON)[0]:
        results[row] = RequiredCapacityResult(
            fits=False, required_capacity=infinity, report=None
        )

    if candidate.size == 0:
        return BatchSearchResult(
            results=tuple(results),  # type: ignore[arg-type]
            stats=BatchSearchStats(n, kernel_calls, 0, 0),
        )

    # Analytic pre-pass: jump straight to the exact theta boundary and
    # verify it with one measured evaluation. Rows whose candidate
    # already reaches the limit skip it (the limit screen below decides
    # them), rows that verify are done, and rows where the deferral
    # deadline binds above the theta boundary keep the failed candidate
    # as a proven lower bracket for the bisection fallback.
    cand_low: dict[int, float] = {}
    if mode == "analytic":
        floors = np.maximum(peaks[candidate], tolerance)
        thresholds = batch.theta_thresholds(commitment.theta)[candidate]
        cand = np.maximum(
            floors, thresholds * (1.0 + _THETA_SLACK) + _EPSILON
        )
        direct = np.nonzero(cand < limits[candidate])[0]
        if direct.size:
            direct_rows = candidate[direct]
            at_cand = batch.evaluate_rows(
                direct_rows, cand[direct], gate=commitment
            )
            kernel_calls += 1
            cand_ok = at_cand.satisfies(commitment, calendar)
            for position in np.nonzero(cand_ok)[0]:
                results[int(direct_rows[position])] = (
                    RequiredCapacityResult(
                        fits=True,
                        required_capacity=float(cand[direct[position]]),
                        report=at_cand.report(int(position)),
                    )
                )
            for position in np.nonzero(~cand_ok)[0]:
                cand_low[int(direct_rows[position])] = float(
                    cand[direct[position]]
                )
            candidate = candidate[
                [results[int(row)] is None for row in candidate]
            ]
            if candidate.size == 0:
                return BatchSearchResult(
                    results=tuple(results),  # type: ignore[arg-type]
                    stats=BatchSearchStats(n, kernel_calls, 0, 0),
                )

    # Screen at the limit (full reports: they are returned on no-fit).
    at_limit = batch.evaluate_rows(candidate, limits[candidate])
    kernel_calls += 1
    limit_ok = at_limit.satisfies(commitment, calendar)
    for position in np.nonzero(~limit_ok)[0]:
        results[candidate[position]] = RequiredCapacityResult(
            fits=False,
            required_capacity=infinity,
            report=at_limit.report(int(position)),
        )

    rows = candidate[limit_ok]
    low = np.maximum(peaks[rows], tolerance)
    if cand_low:
        for position, row in enumerate(rows):
            override = cand_low.get(int(row))
            if override is not None:
                low[position] = override
    high = limits[rows].copy()
    best_theta = at_limit.theta_measured[limit_ok].astype(float, copy=True)
    best_deferred = at_limit.max_deferred_slots[limit_ok].copy()
    best_satisfied = at_limit.cos2_satisfied_on_request[limit_ok].copy()

    def finalize(position: int, required: float) -> RequiredCapacityResult:
        row = int(rows[position])
        return RequiredCapacityResult(
            fits=True,
            required_capacity=required,
            report=AccessReport(
                capacity=required,
                cos1_fits=True,
                cos1_peak=float(peaks[row]),
                theta_measured=float(best_theta[position]),
                max_deferred_slots=int(best_deferred[position]),
                cos2_demand_total=float(batch.totals[row]),
                cos2_satisfied_on_request=float(best_satisfied[position]),
            ),
        )

    def compress(keep: np.ndarray) -> None:
        nonlocal rows, low, high, best_theta, best_deferred, best_satisfied
        rows = rows[keep]
        low = low[keep]
        high = high[keep]
        best_theta = best_theta[keep]
        best_deferred = best_deferred[keep]
        best_satisfied = best_satisfied[keep]

    # Degenerate bracket (low >= high): the limit itself is the answer.
    open_bracket = low < high
    for position in np.nonzero(~open_bracket)[0]:
        results[rows[position]] = finalize(
            int(position), float(high[position])
        )
    compress(open_bracket)

    # The scalar path's low probe: a floor that satisfies ends the
    # search. The analytic pre-pass subsumes it (its candidate is never
    # below this floor and already failed for every row still open).
    if rows.size and mode != "analytic":
        at_low = batch.evaluate_rows(rows, low, gate=commitment)
        kernel_calls += 1
        low_ok = at_low.satisfies(commitment, calendar)
        for position in np.nonzero(low_ok)[0]:
            results[rows[position]] = RequiredCapacityResult(
                fits=True,
                required_capacity=float(low[position]),
                report=at_low.report(int(position)),
            )
        compress(~low_ok)

    # Warm-start probes: verify each guess (and its tolerance sibling)
    # with one batched call, then bracket on the verified side.
    if probes is not None and rows.size:
        guesses = np.asarray(probes, dtype=float)[rows]
        usable = np.isfinite(guesses)
        usable &= (guesses > low) & (guesses < high)
        probe_positions = np.nonzero(usable)[0]
        if probe_positions.size:
            guess = guesses[probe_positions]
            sibling = np.maximum(guess - tolerance, low[probe_positions])
            stacked_rows = np.concatenate(
                [rows[probe_positions], rows[probe_positions]]
            )
            stacked_caps = np.concatenate([guess, sibling])
            probed = batch.evaluate_rows(
                stacked_rows, stacked_caps, gate=commitment
            )
            kernel_calls += 1
            probe_ok = probed.satisfies(commitment, calendar)
            half = probe_positions.size
            for offset, position in enumerate(probe_positions):
                if probe_ok[offset]:
                    high[position] = guess[offset]
                    best_theta[position] = probed.theta_measured[offset]
                    best_deferred[position] = probed.max_deferred_slots[
                        offset
                    ]
                    best_satisfied[position] = (
                        probed.cos2_satisfied_on_request[offset]
                    )
                    if probe_ok[half + offset]:
                        high[position] = sibling[offset]
                        best_theta[position] = probed.theta_measured[
                            half + offset
                        ]
                        best_deferred[position] = (
                            probed.max_deferred_slots[half + offset]
                        )
                        best_satisfied[position] = (
                            probed.cos2_satisfied_on_request[half + offset]
                        )
                    else:
                        low[position] = sibling[offset]
                        probe_hits += 1
                else:
                    low[position] = guess[offset]

    # Simultaneous bisection: one batched kernel call per iteration.
    while rows.size:
        still_open = high - low > tolerance
        for position in np.nonzero(~still_open)[0]:
            results[rows[position]] = finalize(
                int(position), float(high[position])
            )
        compress(still_open)
        if not rows.size:
            break
        mid = (low + high) / 2.0
        at_mid = batch.evaluate_rows(rows, mid, gate=commitment)
        kernel_calls += 1
        bracket_iterations += int(rows.size)
        mid_ok = at_mid.satisfies(commitment, calendar)
        accepted = np.nonzero(mid_ok)[0]
        high[accepted] = mid[accepted]
        best_theta[accepted] = at_mid.theta_measured[accepted]
        best_deferred[accepted] = at_mid.max_deferred_slots[accepted]
        best_satisfied[accepted] = at_mid.cos2_satisfied_on_request[
            accepted
        ]
        rejected = np.nonzero(~mid_ok)[0]
        low[rejected] = mid[rejected]

    return BatchSearchResult(
        results=tuple(results),  # type: ignore[arg-type]
        stats=BatchSearchStats(
            rows=n,
            kernel_calls=kernel_calls,
            bracket_iterations=bracket_iterations,
            probe_hits=probe_hits,
        ),
    )
