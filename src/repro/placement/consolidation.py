"""The consolidation exercise (Section VI-B).

A :class:`Consolidator` takes translated workloads (per-CoS allocation
pairs) and a resource pool and searches for an assignment that satisfies
the resource access QoS commitments on every server while using as few
servers as possible. The default pipeline seeds the genetic search with
a greedy first-fit-decreasing assignment, so the result is always at
least as good as the greedy baseline; ``algorithm=`` selects a pure
baseline instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Mapping, Optional, Sequence

from repro.engine import Checkpointer, ExecutionEngine
from repro.exceptions import PlacementError
from repro.placement.evaluation import KERNELS, PlacementEvaluator
from repro.placement.genetic import (
    GeneticPlacementSearch,
    GeneticSearchConfig,
    GeneticSearchResult,
)
from repro.placement.greedy import best_fit_decreasing, first_fit_decreasing
from repro.resources.pool import ResourcePool
from repro.traces.allocation import CoSAllocationPair

Algorithm = Literal["genetic", "first_fit", "best_fit"]


@dataclass(frozen=True)
class ConsolidationResult:
    """A feasible workload placement and its capacity economics.

    Attributes
    ----------
    assignment:
        Mapping of server name to the workload names placed on it; only
        servers that host at least one workload appear.
    required_by_server:
        Required capacity ``R`` per used server.
    sum_required:
        ``C_requ``: the sum of per-server required capacities (a Table I
        column).
    sum_peak_allocations:
        ``C_peak``: the sum of per-application peak allocations (the
        other Table I column) — what provisioning without sharing would
        need.
    score:
        The consolidation objective value of the assignment.
    algorithm:
        Which placement algorithm produced the result.
    search:
        Details of the genetic search when it ran.
    """

    assignment: Mapping[str, tuple[str, ...]]
    required_by_server: Mapping[str, float]
    sum_required: float
    sum_peak_allocations: float
    score: float
    algorithm: str
    search: Optional[GeneticSearchResult] = None

    @property
    def servers_used(self) -> int:
        return len(self.assignment)

    def sharing_savings(self) -> float:
        """Fractional saving of ``C_requ`` relative to ``C_peak``.

        The paper reports 37-45% for the case study: resource sharing
        lets required capacity undercut the sum of peak allocations.
        """
        if self.sum_peak_allocations == 0:
            return 0.0
        return 1.0 - self.sum_required / self.sum_peak_allocations

    def server_of(self, workload: str) -> str:
        for server, names in self.assignment.items():
            if workload in names:
                return server
        raise PlacementError(f"workload {workload!r} is not in the assignment")

    def to_payload(self) -> dict:
        """This result as a JSON-able checkpoint document.

        Search details are deliberately not persisted: the plan-level
        outputs (assignment, capacities, score) never depend on them,
        so a restored result carries ``search=None`` exactly like one
        computed by a greedy algorithm.
        """
        return {
            "assignment": {
                server: list(names)
                for server, names in self.assignment.items()
            },
            "required_by_server": dict(self.required_by_server),
            "sum_required": self.sum_required,
            "sum_peak_allocations": self.sum_peak_allocations,
            "score": self.score,
            "algorithm": self.algorithm,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ConsolidationResult":
        """Rebuild a persisted result; raises on malformed documents.

        Callers restoring from untrusted checkpoints catch the failure
        and recompute (see :func:`repro.placement.failure._case_from_payload`
        and the shard resume path) — a checkpoint is never load-bearing.
        """
        return cls(
            assignment={
                server: tuple(names)
                for server, names in payload["assignment"].items()
            },
            required_by_server={
                server: float(required)
                for server, required in payload["required_by_server"].items()
            },
            sum_required=float(payload["sum_required"]),
            sum_peak_allocations=float(payload["sum_peak_allocations"]),
            score=float(payload["score"]),
            algorithm=str(payload["algorithm"]),
        )


class Consolidator:
    """Runs the workload placement service for one pool configuration.

    ``kernel`` selects the capacity-search implementation for every
    evaluation this consolidator runs (see
    :data:`repro.placement.evaluation.KERNELS`): ``"batch"`` and
    ``"fused"`` are bit-identical to the scalar reference, ``"analytic"``
    stays within the search tolerance, ``"scalar"`` is the paper's
    per-subset loop.
    """

    def __init__(
        self,
        pool: ResourcePool,
        commitment,
        *,
        config: GeneticSearchConfig | None = None,
        tolerance: float = 0.01,
        attribute: str = "cpu",
        engine: ExecutionEngine | None = None,
        kernel: str = "batch",
        constraints=None,
    ):
        if len(pool) == 0:
            raise PlacementError("cannot consolidate onto an empty pool")
        if kernel not in KERNELS:
            raise PlacementError(
                f"unknown capacity-search kernel {kernel!r}; "
                f"expected one of {KERNELS}"
            )
        self.pool = pool
        self.commitment = commitment
        self.config = config or GeneticSearchConfig()
        self.tolerance = tolerance
        self.attribute = attribute
        self.engine = engine if engine is not None else ExecutionEngine.serial()
        self.kernel = kernel
        #: Optional anti-affinity constraints
        #: (:class:`repro.placement.affinity.PlacementConstraints`):
        #: priced into the genetic fitness and repaired on the final
        #: assignment of any algorithm.
        self.constraints = constraints

    def consolidate(
        self,
        pairs: Sequence[CoSAllocationPair],
        algorithm: Algorithm = "genetic",
        *,
        previous: Optional[ConsolidationResult] = None,
        checkpointer: Optional[Checkpointer] = None,
        checkpoint_key: str = "consolidation",
    ) -> ConsolidationResult:
        """Place ``pairs`` onto the pool with the chosen algorithm.

        ``previous`` seeds the genetic search with an earlier plan's
        assignment: re-planning then prefers solutions close to what is
        already running, which keeps workload migrations down (each move
        disrupts an application and needs migration machinery).
        ``checkpointer`` journals the genetic search's generations under
        ``checkpoint_key`` so an interrupted consolidation resumes from
        its last completed generation (see
        :meth:`GeneticPlacementSearch.run`).
        """
        evaluator = PlacementEvaluator(
            pairs,
            self.commitment,
            tolerance=self.tolerance,
            kernel=self.kernel,
            instrumentation=self.engine.instrumentation,
        )
        return self.consolidate_with_evaluator(
            evaluator,
            algorithm,
            previous=previous,
            checkpointer=checkpointer,
            checkpoint_key=checkpoint_key,
        )

    def consolidate_with_evaluator(
        self,
        evaluator,
        algorithm: Algorithm = "genetic",
        *,
        previous: Optional[ConsolidationResult] = None,
        checkpointer: Optional[Checkpointer] = None,
        checkpoint_key: str = "consolidation",
    ) -> ConsolidationResult:
        """Run the placement algorithms against any evaluator.

        The evaluator only needs the :class:`PlacementEvaluator`
        interface (``names``, ``n_workloads``, ``peak_allocations`` and
        ``evaluate_group``); the multi-attribute extension passes a
        composite evaluator here.
        """
        instrumentation = self.engine.instrumentation
        with instrumentation.stage("placement"):
            if algorithm == "first_fit":
                assignment = first_fit_decreasing(
                    evaluator, self.pool, self.attribute
                )
                search = None
            elif algorithm == "best_fit":
                assignment = best_fit_decreasing(
                    evaluator, self.pool, self.attribute
                )
                search = None
            elif algorithm == "genetic":
                seed = first_fit_decreasing(evaluator, self.pool, self.attribute)
                extra_seeds = [
                    best_fit_decreasing(evaluator, self.pool, self.attribute)
                ]
                extra_seeds.extend(self._correlation_seed(evaluator))
                carried = self._assignment_from_previous(evaluator, previous)
                if carried is not None:
                    extra_seeds.insert(0, carried)
                searcher = GeneticPlacementSearch(
                    evaluator,
                    self.pool,
                    self.config,
                    self.attribute,
                    engine=self.engine,
                    constraints=self.constraints,
                )
                search = searcher.run(
                    seed,
                    extra_seeds=extra_seeds,
                    checkpointer=checkpointer,
                    checkpoint_key=checkpoint_key,
                )
                assignment = search.best.assignment
            else:
                raise PlacementError(
                    f"unknown placement algorithm {algorithm!r}"
                )

            assignment = self._enforce_constraints(evaluator, assignment)
            result = self._build_result(evaluator, assignment, algorithm, search)
        instrumentation.count("placement.consolidations")
        return result

    def _enforce_constraints(self, evaluator, assignment):
        """Repair anti-affinity violations left in a final assignment.

        The genetic search only *prices* violations (a crowded pool can
        make a clean assignment unreachable mid-search) and the greedy
        algorithms ignore them entirely, so the final assignment gets a
        deterministic repair pass: surplus group members migrate to
        feasible servers in unoccupied domains (see
        :func:`repro.placement.affinity.repair_assignment`). The
        ``placement.affinity_*`` counters always report — zeros
        included — whenever constraints are enabled, so counter deltas
        are comparable across runs.
        """
        if self.constraints is None or not self.constraints.enabled:
            return assignment
        from repro.placement.affinity import ConstraintIndex, repair_assignment

        servers = list(self.pool.servers)
        index = ConstraintIndex(self.constraints, evaluator.names, servers)
        instrumentation = self.engine.instrumentation
        violations = index.pair_count(assignment)
        instrumentation.count("placement.affinity_violations", violations)
        moves = 0
        if violations:
            assignment, moves = repair_assignment(
                assignment,
                evaluator,
                servers,
                self.constraints,
                self.attribute,
            )
        instrumentation.count("placement.affinity_repairs", moves)
        remaining = index.pair_count(assignment) if violations else 0
        instrumentation.count("placement.affinity_unrepaired", remaining)
        if remaining:
            instrumentation.event(
                "placement.affinity_unrepaired",
                violations=violations,
                remaining=remaining,
            )
        return assignment

    def _correlation_seed(self, evaluator) -> list[tuple[int, ...]]:
        """A correlation-aware greedy seed, when the evaluator supports it.

        Mixing anti-correlated workloads onto servers is a strong
        starting point for the genetic search (Section VIII flags demand
        correlation as worth exploiting). Composite (multi-attribute)
        evaluators do not expose the raw series, so the seed is skipped
        for them.
        """
        from repro.placement.correlation import correlation_aware_seed
        from repro.placement.evaluation import PlacementEvaluator

        if not isinstance(evaluator, PlacementEvaluator):
            return []
        try:
            return [correlation_aware_seed(evaluator, self.pool, self.attribute)]
        except PlacementError:
            return []

    def _assignment_from_previous(
        self, evaluator, previous: Optional[ConsolidationResult]
    ) -> Optional[tuple[int, ...]]:
        """Translate an earlier plan into a seed assignment, if usable.

        The previous plan is only usable when it covers exactly the
        workloads being placed and references only servers still in the
        pool; otherwise it is silently skipped (the greedy seeds remain).
        """
        if previous is None:
            return None
        server_index = {
            server.name: index
            for index, server in enumerate(self.pool.servers)
        }
        assignment = [-1] * evaluator.n_workloads
        for server_name, names in previous.assignment.items():
            index = server_index.get(server_name)
            if index is None:
                return None
            for name in names:
                try:
                    workload_index = evaluator.index_of(name)
                except PlacementError:
                    return None
                assignment[workload_index] = index
        if any(value < 0 for value in assignment):
            return None
        return tuple(assignment)

    def _build_result(
        self,
        evaluator: PlacementEvaluator,
        assignment: Sequence[int],
        algorithm: str,
        search: Optional[GeneticSearchResult],
    ) -> ConsolidationResult:
        servers = list(self.pool.servers)
        groups: dict[int, list[int]] = {}
        for workload_index, server_index in enumerate(assignment):
            groups.setdefault(int(server_index), []).append(workload_index)

        # Evaluate every used server's final group in one batched call
        # when the evaluator supports it (normally all cache hits after
        # a search; one simultaneous solve otherwise, e.g. for the pure
        # greedy algorithms' final scoring).
        batch_evaluate = getattr(evaluator, "evaluate_groups", None)
        used = [
            (server_index, server)
            for server_index, server in enumerate(servers)
            if groups.get(server_index)
        ]
        if batch_evaluate is not None:
            evaluations = batch_evaluate(
                [
                    (server.capacity_of(self.attribute), groups[server_index])
                    for server_index, server in used
                ]
            )
        else:
            evaluations = [
                evaluator.evaluate_group(
                    groups[server_index], server, self.attribute
                )
                for server_index, server in used
            ]
        evaluation_by_server = {
            server_index: evaluation
            for (server_index, _), evaluation in zip(used, evaluations)
        }

        named_assignment: dict[str, tuple[str, ...]] = {}
        required_by_server: dict[str, float] = {}
        score = 0.0
        for server_index, server in enumerate(servers):
            indices = groups.get(server_index)
            if not indices:
                score += 1.0
                continue
            evaluation = evaluation_by_server[server_index]
            if not evaluation.fits:
                raise PlacementError(
                    f"assignment places an infeasible workload set on "
                    f"{server.name!r}"
                )
            named_assignment[server.name] = tuple(
                evaluator.names[index] for index in sorted(indices)
            )
            required_by_server[server.name] = evaluation.required
            score += evaluation.utilization ** (2 * server.cpus)

        peaks = evaluator.peak_allocations()
        return ConsolidationResult(
            assignment=named_assignment,
            required_by_server=required_by_server,
            sum_required=float(sum(required_by_server.values())),
            sum_peak_allocations=float(peaks.sum()),
            score=score,
            algorithm=algorithm,
            search=search,
        )
