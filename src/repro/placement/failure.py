"""Failure-mode planning (Section VI-C).

Starting from a normal-mode consolidation, the planner removes one
server at a time, switches the affected applications (those that were
hosted on the failed server) to their failure-mode QoS requirements, and
re-runs the consolidation on the surviving servers. If every single-
server failure can be absorbed, the pool needs no spare server — the
applications ride out the repair window at their (typically relaxed)
failure-mode QoS.

The planner deliberately re-translates only the affected applications by
default; pass ``relax_all=True`` to apply failure-mode QoS to every
application during the what-if (the cheaper, pool-wide degraded posture
used in the paper's case-study discussion of Table I).

Fan-out: every what-if case is independent — translate the ensemble
under the case's QoS mix, consolidate on the surviving servers — so the
sweep maps cases through the execution engine. Each work unit is a pure
function of a broadcast :class:`_FailureSweepPayload` (commitments, pool,
demands, policies, search config) and its ``(failed servers, affected
workloads)`` item; inner consolidations run serially inside the worker
with their own deterministic seeded search, so results are identical
across backends.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.cos import PoolCommitments
from repro.core.qos import QoSPolicy
from repro.engine import Checkpointer, ExecutionEngine
from repro.exceptions import PlacementError
from repro.placement.consolidation import ConsolidationResult, Consolidator
from repro.placement.fused import TranslationCache
from repro.placement.genetic import GeneticSearchConfig
from repro.traces.trace import DemandTrace


@dataclass(frozen=True)
class FailureCase:
    """Outcome of one failure what-if (one or more servers down).

    ``failed_server`` names the failed server for the single-failure
    sweep; for multi-failure what-ifs it joins the failed servers with
    ``"+"``.
    """

    failed_server: str
    feasible: bool
    affected_workloads: tuple[str, ...]
    result: ConsolidationResult | None

    @property
    def servers_used(self) -> int | None:
        return self.result.servers_used if self.result is not None else None

    @property
    def failed_servers(self) -> tuple[str, ...]:
        return tuple(self.failed_server.split("+"))


@dataclass(frozen=True)
class FailureReport:
    """All single-failure what-ifs for one normal-mode plan."""

    cases: tuple[FailureCase, ...]

    @property
    def spare_server_needed(self) -> bool:
        """True when at least one failure cannot be absorbed in place."""
        return any(not case.feasible for case in self.cases)

    @property
    def all_supported(self) -> bool:
        return not self.spare_server_needed

    def case_for(self, server_name: str) -> FailureCase:
        for case in self.cases:
            if case.failed_server == server_name:
                return case
        raise PlacementError(f"no failure case for server {server_name!r}")


@dataclass(frozen=True)
class _FailureSweepPayload:
    """Picklable state broadcast once per failure sweep.

    Carries commitments rather than the driver's translator so engines
    (which may hold live process pools) never cross process boundaries.
    """

    commitments: PoolCommitments
    config: GeneticSearchConfig | None
    tolerance: float
    attribute: str
    pool: object
    demands: tuple[DemandTrace, ...]
    policies: Mapping[str, QoSPolicy] | QoSPolicy
    relax_all: bool
    algorithm: str
    kernel: str = "batch"
    share_cache: bool = True

    def __getstate__(self) -> dict:
        # The lazily attached scratch (see ``_scratch_for``) holds live
        # evaluators; it must never cross a process boundary.
        state = dict(self.__dict__)
        state.pop("_scratch", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


class _SweepScratch:
    """Process-local memo shared across one sweep's what-if cases.

    Everything memoised here is a pure function of the broadcast
    payload: a workload's failure-mode translation does not depend on
    which server failed, and with ``relax_all`` every case degrades the
    same ensemble — so the cases share one translation table and, per
    distinct QoS mix, one :class:`PlacementEvaluator` whose
    required-capacity memo carries over from case to case. Sharing
    changes no results (cache hits return exactly what a fresh search
    would), it only removes re-derivation; the serial backend shares
    across the whole sweep, parallel workers share whatever cases land
    in the same process.
    """

    def __init__(self) -> None:
        self.translations: dict = {}
        self.evaluators: dict = {}
        # Fused-kernel group translations, shared across every case
        # (and every per-QoS-mix evaluator) this process handles: the
        # cache keys on each evaluator's content fingerprint, so mixes
        # with different degraded ensembles never collide.
        self.fused_translations = TranslationCache()


def _scratch_for(payload: _FailureSweepPayload) -> _SweepScratch | None:
    """The payload's scratch, attached lazily to the payload itself.

    Each worker process unpickles its own payload copy (broadcast once
    per session), so hanging the scratch off that copy keeps it
    process-local without any module-level registry — the scratch's
    lifetime is exactly the payload's, and a new sweep starts cold by
    construction. ``object.__setattr__`` is the sanctioned escape
    hatch for caching on a frozen dataclass.
    """
    if not payload.share_cache:
        return None
    scratch = getattr(payload, "_scratch", None)
    if scratch is None:
        scratch = _SweepScratch()
        object.__setattr__(payload, "_scratch", scratch)
    return scratch


def _failure_case_worker(
    payload: _FailureSweepPayload,
    item: tuple[tuple[str, ...], tuple[str, ...]],
) -> FailureCase:
    """Executor work unit: evaluate one failure what-if end to end."""
    from repro.core.translation import QoSTranslator

    failed_servers, affected = item
    planner = FailurePlanner(
        QoSTranslator(payload.commitments),
        config=payload.config,
        tolerance=payload.tolerance,
        attribute=payload.attribute,
        kernel=payload.kernel,
    )
    demand_by_name = {demand.name: demand for demand in payload.demands}
    return planner._evaluate_failure(
        failed_servers,
        set(affected),
        demand_by_name,
        payload.policies,
        payload.pool,
        relax_all=payload.relax_all,
        algorithm=payload.algorithm,
        scratch=_scratch_for(payload),
    )


def _case_to_payload(case: FailureCase) -> dict:
    """A :class:`FailureCase` as a JSON-able checkpoint document."""
    result = case.result
    return {
        "failed_server": case.failed_server,
        "feasible": case.feasible,
        "affected_workloads": list(case.affected_workloads),
        "result": None if result is None else result.to_payload(),
    }


def _case_from_payload(payload: dict) -> FailureCase | None:
    """Rebuild a persisted what-if case; ``None`` when unreadable.

    Search details are not persisted (the sweep's plan-level outputs —
    feasibility, assignment, capacities — never depend on them), so a
    restored case carries ``search=None`` exactly like a case computed
    by a greedy algorithm.
    """
    try:
        doc = payload["result"]
        result = None if doc is None else ConsolidationResult.from_payload(doc)
        return FailureCase(
            failed_server=str(payload["failed_server"]),
            feasible=bool(payload["feasible"]),
            affected_workloads=tuple(payload["affected_workloads"]),
            result=result,
        )
    except (KeyError, TypeError, ValueError, AttributeError):
        return None


class FailurePlanner:
    """Evaluates whether single-server failures can be absorbed."""

    def __init__(
        self,
        translator,
        *,
        config: GeneticSearchConfig | None = None,
        tolerance: float = 0.01,
        attribute: str = "cpu",
        engine: ExecutionEngine | None = None,
        kernel: str = "batch",
        share_cache: bool = True,
        checkpointer: Checkpointer | None = None,
    ):
        self.translator = translator
        self.config = config
        self.tolerance = tolerance
        self.attribute = attribute
        self.engine = engine if engine is not None else ExecutionEngine.serial()
        self.kernel = kernel
        self.share_cache = share_cache
        self.checkpointer = checkpointer

    def plan(
        self,
        demands: Sequence[DemandTrace],
        policies: Mapping[str, QoSPolicy] | QoSPolicy,
        pool,
        normal_result: ConsolidationResult,
        *,
        relax_all: bool = False,
        algorithm: str = "genetic",
    ) -> FailureReport:
        """Run the what-if for every server used by the normal plan.

        Parameters
        ----------
        demands:
            The full workload ensemble (demand traces).
        policies:
            Per-workload :class:`~repro.core.qos.QoSPolicy` (or one
            shared policy) providing normal- and failure-mode QoS.
        pool:
            The pool the normal plan was computed for.
        normal_result:
            The normal-mode consolidation to perturb.
        relax_all:
            Apply failure-mode QoS to every application during the
            what-if instead of only those hosted on the failed server.
        """
        demand_by_name = {demand.name: demand for demand in demands}
        missing = [
            name
            for names in normal_result.assignment.values()
            for name in names
            if name not in demand_by_name
        ]
        if missing:
            raise PlacementError(
                f"normal plan references unknown workloads: {missing}"
            )

        items = [
            ((failed_server,), tuple(sorted(set(hosted))))
            for failed_server, hosted in normal_result.assignment.items()
        ]
        return self._sweep(items, demands, policies, pool, relax_all, algorithm)

    def plan_multi(
        self,
        demands: Sequence[DemandTrace],
        policies: Mapping[str, QoSPolicy] | QoSPolicy,
        pool,
        normal_result: ConsolidationResult,
        *,
        concurrent_failures: int = 2,
        relax_all: bool = False,
        algorithm: str = "genetic",
    ) -> FailureReport:
        """What-if every combination of ``concurrent_failures`` servers.

        The paper notes the single-failure scenario "can be extended to
        multiple node failures" (Section III); this sweep evaluates every
        combination of used servers failing together. The number of
        cases grows combinatorially, so it is practical for the small
        ``concurrent_failures`` values operators actually plan for.
        """
        if concurrent_failures < 1:
            raise PlacementError(
                f"concurrent_failures must be >= 1, got {concurrent_failures}"
            )
        used_servers = list(normal_result.assignment)
        if concurrent_failures > len(used_servers):
            raise PlacementError(
                f"cannot fail {concurrent_failures} of "
                f"{len(used_servers)} used servers"
            )
        items = []
        for combo in itertools.combinations(used_servers, concurrent_failures):
            affected = {
                name
                for server in combo
                for name in normal_result.assignment[server]
            }
            items.append((tuple(combo), tuple(sorted(affected))))
        return self._sweep(items, demands, policies, pool, relax_all, algorithm)

    def _sweep(
        self,
        items: Sequence[tuple[tuple[str, ...], tuple[str, ...]]],
        demands: Sequence[DemandTrace],
        policies: Mapping[str, QoSPolicy] | QoSPolicy,
        pool,
        relax_all: bool,
        algorithm: str,
    ) -> FailureReport:
        """Evaluate every what-if case through the execution engine."""
        payload = _FailureSweepPayload(
            commitments=self.translator.commitments,
            config=self.config,
            tolerance=self.tolerance,
            attribute=self.attribute,
            pool=pool,
            demands=tuple(demands),
            policies=policies,
            relax_all=relax_all,
            algorithm=algorithm,
            kernel=self.kernel,
            share_cache=self.share_cache,
        )
        instrumentation = self.engine.instrumentation
        with instrumentation.stage("failure_planning"):
            restored: dict[int, FailureCase] = {}
            pending: list[tuple[int, object]] = []
            for position, item in enumerate(items):
                case = self._load_case("+".join(item[0]))
                if case is not None:
                    restored[position] = case
                else:
                    pending.append((position, item))
            if restored:
                instrumentation.count("failure.case_resumes", len(restored))
                instrumentation.event(
                    "failure.cases_resumed",
                    restored=len(restored),
                    pending=len(pending),
                )
            # Map in parallelism-sized waves so each wave's cases are
            # checkpointed as soon as they exist: a kill mid-sweep
            # loses at most the in-flight wave, and the resume picks up
            # every completed case. (One session spans all waves, so
            # the payload still broadcasts once.)
            computed: list[FailureCase] = []
            if pending:
                with self.engine.session(payload) as session:
                    wave = max(1, int(getattr(session, "parallelism", 1)))
                    for start in range(0, len(pending), wave):
                        batch = pending[start : start + wave]
                        for case in session.map(
                            _failure_case_worker,
                            [item for _, item in batch],
                        ):
                            computed.append(case)
                            self._save_case(case)
            cases: list[FailureCase] = [None] * len(items)  # type: ignore[list-item]
            for case_position, case in restored.items():
                cases[case_position] = case
            for (case_position, _), case in zip(pending, computed):
                cases[case_position] = case
        instrumentation.count("failure.cases", len(items))
        return FailureReport(cases=tuple(cases))

    def _case_key(self, label: str) -> str:
        return f"failure/{label}"

    def _load_case(self, label: str) -> FailureCase | None:
        if self.checkpointer is None:
            return None
        payload = self.checkpointer.load(self._case_key(label))
        if payload is None:
            return None
        return _case_from_payload(payload)

    def _save_case(self, case: FailureCase) -> None:
        if self.checkpointer is not None:
            self.checkpointer.save(
                self._case_key(case.failed_server), _case_to_payload(case)
            )

    def _evaluate_failure(
        self,
        failed_servers: tuple[str, ...],
        affected: set[str],
        demand_by_name: Mapping[str, DemandTrace],
        policies: Mapping[str, QoSPolicy] | QoSPolicy,
        pool,
        *,
        relax_all: bool,
        algorithm: str,
        scratch: _SweepScratch | None = None,
    ) -> FailureCase:
        label = "+".join(failed_servers)
        surviving = pool.without(*failed_servers)
        pairs = []
        mix = []
        for name, demand in demand_by_name.items():
            policy = self._policy_for(policies, name)
            failure_mode = relax_all or name in affected
            qos = policy.mode(failure_mode=failure_mode)
            key = (name, failure_mode)
            pair = (
                scratch.translations.get(key)
                if scratch is not None
                else None
            )
            if pair is None:
                pair = self.translator.translate(demand, qos).pair
                if scratch is not None:
                    scratch.translations[key] = pair
            pairs.append(pair)
            mix.append(key)

        consolidator = Consolidator(
            surviving,
            self.translator.commitments.cos2,
            config=self.config,
            tolerance=self.tolerance,
            attribute=self.attribute,
            kernel=self.kernel,
        )
        try:
            if scratch is not None:
                from repro.placement.evaluation import PlacementEvaluator

                signature = tuple(mix)
                evaluator = scratch.evaluators.get(signature)
                if evaluator is None:
                    evaluator = PlacementEvaluator(
                        pairs,
                        self.translator.commitments.cos2,
                        tolerance=self.tolerance,
                        kernel=self.kernel,
                        instrumentation=consolidator.engine.instrumentation,
                        translations=scratch.fused_translations,
                    )
                    scratch.evaluators[signature] = evaluator
                result = consolidator.consolidate_with_evaluator(
                    evaluator, algorithm=algorithm
                )
            else:
                result = consolidator.consolidate(pairs, algorithm=algorithm)
        except PlacementError:
            return FailureCase(
                failed_server=label,
                feasible=False,
                affected_workloads=tuple(sorted(affected)),
                result=None,
            )
        return FailureCase(
            failed_server=label,
            feasible=True,
            affected_workloads=tuple(sorted(affected)),
            result=result,
        )

    @staticmethod
    def _policy_for(
        policies: Mapping[str, QoSPolicy] | QoSPolicy, name: str
    ) -> QoSPolicy:
        if isinstance(policies, QoSPolicy):
            return policies
        try:
            return policies[name]
        except KeyError:
            raise PlacementError(
                f"no QoS policy given for workload {name!r}"
            ) from None
