"""Failure-mode planning (Section VI-C), with correlated failure domains.

Starting from a normal-mode consolidation, the planner perturbs the pool
with a fault scenario, switches the affected applications (those hosted
on the faulted servers) to their failure-mode QoS requirements, and
re-runs the consolidation on the surviving capacity. If every scenario
in a sweep can be absorbed, the pool needs no spare server — the
applications ride out the repair window at their (typically relaxed)
failure-mode QoS.

Scenario families (one :class:`FaultScenario` each):

* **single-server loss** (:meth:`FailurePlanner.plan`) — the paper's
  sweep: remove one used server at a time;
* **k-concurrent loss** (:meth:`FailurePlanner.plan_multi`) — every
  combination of ``k`` used servers, globally or drawn *within* one
  rack/zone (correlated faults); combinatorial spaces beyond
  :data:`MAX_EXHAUSTIVE_CASES` are sampled with a deterministic seeded
  draw instead of refused;
* **whole-domain loss** (:meth:`FailurePlanner.plan_domains`) — every
  rack or zone that hosts workloads fails at once (the
  :class:`~repro.resources.server.ServerSpec` topology labels define
  the domains);
* **degraded servers** (:meth:`FailurePlanner.plan_degraded`) — the
  servers of a domain *survive* with their capacity limits scaled by a
  factor in ``(0, 1)`` rather than disappearing; their residents still
  fall back to failure-mode QoS for the repair window.

:meth:`FailurePlanner.spare_sizing_curve` searches, per failure scope,
for the smallest number of cloned spare servers that makes the sweep
fully absorbable — the spares-needed-vs-failure-scope curve the
capacity outlook reports.

The planner deliberately re-translates only the affected applications by
default; pass ``relax_all=True`` to apply failure-mode QoS to every
application during the what-if (the cheaper, pool-wide degraded posture
used in the paper's case-study discussion of Table I).

Fan-out: every what-if case is independent — translate the ensemble
under the case's QoS mix, consolidate on the surviving capacity — so the
sweep maps cases through the execution engine. Each work unit is a pure
function of a broadcast :class:`_FailureSweepPayload` (commitments, pool,
demands, policies, search config) and its ``(scenario, affected
workloads)`` item; inner consolidations run serially inside the worker
with their own deterministic seeded search, so results are identical
across backends. Completed cases are checkpointed per wave under keys
derived from the scenario's structured fields, so killed sweeps resume.
"""

from __future__ import annotations

import itertools
import math
import warnings
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.core.cos import PoolCommitments
from repro.core.qos import QoSPolicy
from repro.engine import Checkpointer, ExecutionEngine
from repro.exceptions import PlacementError
from repro.placement.consolidation import ConsolidationResult, Consolidator
from repro.placement.fused import TranslationCache
from repro.placement.genetic import GeneticSearchConfig
from repro.resources.pool import DOMAIN_KINDS
from repro.traces.trace import DemandTrace
from repro.util.rng import derive_rng

#: Exhaustive multi-failure sweeps stop here: when a sweep's
#: combination space ``C(n, k)`` (summed over domains for
#: within-domain draws) exceeds this cap, the sweep evaluates a
#: deterministic seeded sample of this many combinations instead.
#: The ``failure.sweep_exhaustive`` / ``failure.sweep_sampled``
#: counters record which branch a run took.
MAX_EXHAUSTIVE_CASES = 512


def parse_scope(scope: str) -> tuple[str, Optional[int]]:
    """Parse a failure-scope spec into ``(domain kind, k)``.

    ``"server"`` — single-server loss; ``"server:2"`` — two concurrent
    losses anywhere; ``"rack"``/``"zone"`` — whole-domain loss;
    ``"rack:2"`` — two concurrent losses drawn within each rack.
    ``k is None`` means the whole domain fails at once.
    """
    base, _, k_text = scope.partition(":")
    if base not in DOMAIN_KINDS:
        raise PlacementError(
            f"failure scope must start with one of {DOMAIN_KINDS}, "
            f"got {scope!r}"
        )
    if not k_text:
        return base, 1 if base == "server" else None
    try:
        k = int(k_text)
    except ValueError:
        raise PlacementError(
            f"failure scope {scope!r}: expected an integer after ':'"
        ) from None
    if k < 1:
        raise PlacementError(f"failure scope {scope!r}: k must be >= 1")
    return base, k


def _scope_width(scope: str) -> tuple[int, float]:
    """A sortable width key: wider scopes sort later.

    Ordered by domain granularity first (server < rack < zone), then by
    the concurrent-loss count ``k`` (whole-domain loss counts as wider
    than any ``k``-subset of the same granularity).
    """
    base, k = parse_scope(scope)
    return DOMAIN_KINDS.index(base), math.inf if k is None else float(k)


def _scenario_label(
    kind: str,
    domain: Optional[str],
    failed_servers: tuple[str, ...],
    degraded: tuple[tuple[str, float], ...],
) -> str:
    """The stable display / checkpoint identity of one scenario.

    Built from structured fields only — never parsed back. Plain
    single- and multi-server losses keep the historical ``"+"``-joined
    form, so flat-pool checkpoint keys and plan hashes are unchanged.
    """
    if degraded:
        core = "degraded:" + "+".join(
            f"{name}@{factor:g}" for name, factor in degraded
        )
    else:
        core = "+".join(failed_servers)
    if kind != "server" and domain is not None:
        return f"{kind}:{domain}:{core}"
    return core


@dataclass(frozen=True)
class FaultScenario:
    """One fault to what-if: servers lost and/or degraded together.

    ``kind`` names the scope family (``"server"``, ``"rack"``,
    ``"zone"``); ``domain`` carries the rack/zone label for
    domain-scoped scenarios. ``degraded`` lists ``(server, factor)``
    pairs for servers that survive with scaled capacity.
    """

    failed_servers: tuple[str, ...] = ()
    degraded: tuple[tuple[str, float], ...] = ()
    kind: str = "server"
    domain: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.failed_servers and not self.degraded:
            raise PlacementError(
                "a fault scenario must fail or degrade at least one server"
            )
        if self.kind not in DOMAIN_KINDS:
            raise PlacementError(
                f"scenario kind must be one of {DOMAIN_KINDS}, "
                f"got {self.kind!r}"
            )
        for name, factor in self.degraded:
            if not 0.0 < factor < 1.0:
                raise PlacementError(
                    f"degraded factor for {name!r} must be in (0, 1), "
                    f"got {factor}"
                )

    @property
    def label(self) -> str:
        return _scenario_label(
            self.kind, self.domain, self.failed_servers, self.degraded
        )


@dataclass(frozen=True)
class FailureCase:
    """Outcome of one failure what-if.

    ``failed_servers`` is the structured identity of the fault (empty
    for pure degraded-capacity scenarios); ``degraded`` lists the
    ``(server, factor)`` pairs that survived with scaled limits;
    ``kind``/``domain`` record the scope the case came from.
    """

    failed_servers: tuple[str, ...]
    feasible: bool
    affected_workloads: tuple[str, ...]
    result: ConsolidationResult | None
    kind: str = "server"
    domain: Optional[str] = None
    degraded: tuple[tuple[str, float], ...] = ()

    @property
    def servers_used(self) -> int | None:
        return self.result.servers_used if self.result is not None else None

    @property
    def label(self) -> str:
        """The case's stable identity (matches its scenario's label)."""
        return _scenario_label(
            self.kind, self.domain, self.failed_servers, self.degraded
        )

    @property
    def failed_server(self) -> str:
        """Deprecated: the ``"+"``-joined display string.

        Use :attr:`failed_servers` (structured) or :attr:`label`
        (display/checkpoint identity) instead; this property exists only
        for callers written against the pre-domain API.
        """
        warnings.warn(
            "FailureCase.failed_server is deprecated; use "
            "FailureCase.failed_servers or FailureCase.label",
            DeprecationWarning,
            stacklevel=2,
        )
        return "+".join(self.failed_servers)


@dataclass(frozen=True)
class FailureReport:
    """All what-if cases of one sweep over one normal-mode plan."""

    cases: tuple[FailureCase, ...]

    @property
    def spare_server_needed(self) -> bool:
        """True when at least one failure cannot be absorbed in place."""
        return any(not case.feasible for case in self.cases)

    @property
    def all_supported(self) -> bool:
        return not self.spare_server_needed

    @property
    def infeasible_cases(self) -> tuple[FailureCase, ...]:
        return tuple(case for case in self.cases if not case.feasible)

    def case_for(self, label: str) -> FailureCase:
        """Look up a case by its label (a server name for the single
        sweep, a scenario label otherwise)."""
        for case in self.cases:
            if case.label == label or "+".join(case.failed_servers) == label:
                return case
        raise PlacementError(f"no failure case for server {label!r}")

    def summary(self) -> dict[str, object]:
        return {
            "cases": len(self.cases),
            "infeasible": len(self.infeasible_cases),
            "all_supported": self.all_supported,
        }


@dataclass(frozen=True)
class SparePoint:
    """One scope's entry on the spares-needed-vs-failure-scope curve."""

    scope: str
    cases: int
    infeasible_without_spares: int
    #: Smallest spare count that absorbs every case; ``None`` when even
    #: ``max_spares`` spares were not enough.
    spares_needed: Optional[int]


@dataclass(frozen=True)
class SpareSizingCurve:
    """Spares needed per failure scope, for one pool and plan."""

    points: tuple[SparePoint, ...]
    max_spares: int

    def spares_for(self, scope: str) -> Optional[int]:
        for point in self.points:
            if point.scope == scope:
                return point.spares_needed
        raise PlacementError(f"no spare-sizing point for scope {scope!r}")

    def monotone_in_scope(self) -> bool:
        """True when shrinking the failure scope never needs more spares.

        Points are ordered narrow → wide by :func:`_scope_width`; a
        scope the search could not satisfy within ``max_spares`` counts
        as needing ``max_spares + 1``.
        """
        ordered = sorted(self.points, key=lambda point: _scope_width(point.scope))
        needed = [
            point.spares_needed
            if point.spares_needed is not None
            else self.max_spares + 1
            for point in ordered
        ]
        return all(a <= b for a, b in zip(needed, needed[1:]))

    def to_payload(self) -> dict[str, object]:
        """A JSON-able form (plan summaries, benchmark artifacts)."""
        return {
            "max_spares": self.max_spares,
            "points": [
                {
                    "scope": point.scope,
                    "cases": point.cases,
                    "infeasible_without_spares": (
                        point.infeasible_without_spares
                    ),
                    "spares_needed": point.spares_needed,
                }
                for point in self.points
            ],
        }


@dataclass(frozen=True)
class FailureSweepPolicy:
    """What the pipeline's ``failure_check`` stage should sweep.

    The single-server sweep always runs (it is the paper's baseline
    report); ``scopes`` adds domain-scoped sweeps on top (see
    :func:`parse_scope` for the spec grammar). ``degraded_factor``
    additionally sweeps degraded-server scenarios at ``degraded_scope``
    granularity; ``spare_curve`` runs the spare-sizing search over
    ``spare_scopes`` (defaulting to the granularities the pool's
    topology actually has). ``max_cases``/``sample_seed`` bound the
    combinatorial sweeps (``None`` means
    :data:`MAX_EXHAUSTIVE_CASES` / seed ``0``).
    """

    scopes: tuple[str, ...] = ("rack",)
    degraded_factor: Optional[float] = None
    degraded_scope: str = "server"
    spare_curve: bool = False
    spare_scopes: Optional[tuple[str, ...]] = None
    max_spares: int = 4
    max_cases: Optional[int] = None
    sample_seed: Optional[int] = None

    def __post_init__(self) -> None:
        for scope in self.scopes + (self.spare_scopes or ()):
            parse_scope(scope)
        parse_scope(self.degraded_scope)
        if self.degraded_factor is not None and not (
            0.0 < self.degraded_factor < 1.0
        ):
            raise PlacementError(
                f"degraded_factor must be in (0, 1), "
                f"got {self.degraded_factor}"
            )
        if self.max_spares < 0:
            raise PlacementError(
                f"max_spares must be >= 0, got {self.max_spares}"
            )
        if self.max_cases is not None and self.max_cases < 1:
            raise PlacementError(
                f"max_cases must be >= 1, got {self.max_cases}"
            )


@dataclass(frozen=True)
class _FailureSweepPayload:
    """Picklable state broadcast once per failure sweep.

    Carries commitments rather than the driver's translator so engines
    (which may hold live process pools) never cross process boundaries.
    """

    commitments: PoolCommitments
    config: GeneticSearchConfig | None
    tolerance: float
    attribute: str
    pool: object
    demands: tuple[DemandTrace, ...]
    policies: Mapping[str, QoSPolicy] | QoSPolicy
    relax_all: bool
    algorithm: str
    kernel: str = "batch"
    share_cache: bool = True

    def __getstate__(self) -> dict:
        # The lazily attached scratch (see ``_scratch_for``) holds live
        # evaluators; it must never cross a process boundary.
        state = dict(self.__dict__)
        state.pop("_scratch", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


class _SweepScratch:
    """Process-local memo shared across one sweep's what-if cases.

    Everything memoised here is a pure function of the broadcast
    payload: a workload's failure-mode translation does not depend on
    which server failed, and with ``relax_all`` every case degrades the
    same ensemble — so the cases share one translation table and, per
    distinct QoS mix, one :class:`PlacementEvaluator` whose
    required-capacity memo carries over from case to case. Sharing
    changes no results (cache hits return exactly what a fresh search
    would), it only removes re-derivation; the serial backend shares
    across the whole sweep, parallel workers share whatever cases land
    in the same process. Degraded-capacity scenarios only change
    server *limits*, never the translated workloads, so they share the
    same memo.
    """

    def __init__(self) -> None:
        self.translations: dict = {}
        self.evaluators: dict = {}
        # Fused-kernel group translations, shared across every case
        # (and every per-QoS-mix evaluator) this process handles: the
        # cache keys on each evaluator's content fingerprint, so mixes
        # with different degraded ensembles never collide.
        self.fused_translations = TranslationCache()


def _scratch_for(payload: _FailureSweepPayload) -> _SweepScratch | None:
    """The payload's scratch, attached lazily to the payload itself.

    Each worker process unpickles its own payload copy (broadcast once
    per session), so hanging the scratch off that copy keeps it
    process-local without any module-level registry — the scratch's
    lifetime is exactly the payload's, and a new sweep starts cold by
    construction. ``object.__setattr__`` is the sanctioned escape
    hatch for caching on a frozen dataclass.
    """
    if not payload.share_cache:
        return None
    scratch = getattr(payload, "_scratch", None)
    if scratch is None:
        scratch = _SweepScratch()
        object.__setattr__(payload, "_scratch", scratch)
    return scratch


def _failure_case_worker(
    payload: _FailureSweepPayload,
    item: tuple[FaultScenario, tuple[str, ...]],
) -> FailureCase:
    """Executor work unit: evaluate one failure what-if end to end."""
    from repro.core.translation import QoSTranslator

    scenario, affected = item
    planner = FailurePlanner(
        QoSTranslator(payload.commitments),
        config=payload.config,
        tolerance=payload.tolerance,
        attribute=payload.attribute,
        kernel=payload.kernel,
    )
    demand_by_name = {demand.name: demand for demand in payload.demands}
    return planner._evaluate_failure(
        scenario,
        set(affected),
        demand_by_name,
        payload.policies,
        payload.pool,
        relax_all=payload.relax_all,
        algorithm=payload.algorithm,
        scratch=_scratch_for(payload),
    )


def _case_to_payload(case: FailureCase) -> dict:
    """A :class:`FailureCase` as a JSON-able checkpoint document.

    Structured fields only: nothing downstream re-parses a joined
    display string.
    """
    result = case.result
    return {
        "failed_servers": list(case.failed_servers),
        "kind": case.kind,
        "domain": case.domain,
        "degraded": [[name, factor] for name, factor in case.degraded],
        "feasible": case.feasible,
        "affected_workloads": list(case.affected_workloads),
        "result": None if result is None else result.to_payload(),
    }


def _case_from_payload(payload: dict) -> FailureCase | None:
    """Rebuild a persisted what-if case; ``None`` when unreadable.

    Search details are not persisted (the sweep's plan-level outputs —
    feasibility, assignment, capacities — never depend on them), so a
    restored case carries ``search=None`` exactly like a case computed
    by a greedy algorithm. Pre-domain checkpoints (which persisted a
    joined ``failed_server`` string) read as unreadable and recompute.
    """
    try:
        doc = payload["result"]
        result = None if doc is None else ConsolidationResult.from_payload(doc)
        domain = payload["domain"]
        return FailureCase(
            failed_servers=tuple(
                str(name) for name in payload["failed_servers"]
            ),
            feasible=bool(payload["feasible"]),
            affected_workloads=tuple(payload["affected_workloads"]),
            result=result,
            kind=str(payload["kind"]),
            domain=None if domain is None else str(domain),
            degraded=tuple(
                (str(name), float(factor))
                for name, factor in payload["degraded"]
            ),
        )
    except (KeyError, TypeError, ValueError, AttributeError):
        return None


class FailurePlanner:
    """Evaluates whether fault scenarios can be absorbed by the pool."""

    def __init__(
        self,
        translator,
        *,
        config: GeneticSearchConfig | None = None,
        tolerance: float = 0.01,
        attribute: str = "cpu",
        engine: ExecutionEngine | None = None,
        kernel: str = "batch",
        share_cache: bool = True,
        checkpointer: Checkpointer | None = None,
    ):
        self.translator = translator
        self.config = config
        self.tolerance = tolerance
        self.attribute = attribute
        self.engine = engine if engine is not None else ExecutionEngine.serial()
        self.kernel = kernel
        self.share_cache = share_cache
        self.checkpointer = checkpointer

    def plan(
        self,
        demands: Sequence[DemandTrace],
        policies: Mapping[str, QoSPolicy] | QoSPolicy,
        pool,
        normal_result: ConsolidationResult,
        *,
        relax_all: bool = False,
        algorithm: str = "genetic",
        key_prefix: str = "",
    ) -> FailureReport:
        """Run the what-if for every server used by the normal plan.

        Parameters
        ----------
        demands:
            The full workload ensemble (demand traces).
        policies:
            Per-workload :class:`~repro.core.qos.QoSPolicy` (or one
            shared policy) providing normal- and failure-mode QoS.
        pool:
            The pool the normal plan was computed for.
        normal_result:
            The normal-mode consolidation to perturb.
        relax_all:
            Apply failure-mode QoS to every application during the
            what-if instead of only those hosted on the failed server.
        """
        demand_by_name = {demand.name: demand for demand in demands}
        missing = [
            name
            for names in normal_result.assignment.values()
            for name in names
            if name not in demand_by_name
        ]
        if missing:
            raise PlacementError(
                f"normal plan references unknown workloads: {missing}"
            )

        items = [
            (
                FaultScenario(failed_servers=(failed_server,)),
                tuple(sorted(set(hosted))),
            )
            for failed_server, hosted in normal_result.assignment.items()
        ]
        return self._sweep(
            items, demands, policies, pool, relax_all, algorithm,
            key_prefix=key_prefix,
        )

    def plan_multi(
        self,
        demands: Sequence[DemandTrace],
        policies: Mapping[str, QoSPolicy] | QoSPolicy,
        pool,
        normal_result: ConsolidationResult,
        *,
        concurrent_failures: int = 2,
        relax_all: bool = False,
        algorithm: str = "genetic",
        within_domain: Optional[str] = None,
        max_cases: Optional[int] = None,
        sample_seed: Optional[int] = None,
        key_prefix: str = "",
    ) -> FailureReport:
        """What-if combinations of ``concurrent_failures`` used servers.

        The paper notes the single-failure scenario "can be extended to
        multiple node failures" (Section III). With ``within_domain``
        set to ``"rack"`` or ``"zone"``, combinations are drawn per
        domain — the correlated-fault model where concurrent losses
        cluster inside a failure domain.

        The number of cases grows combinatorially; when the combination
        space exceeds ``max_cases`` (default
        :data:`MAX_EXHAUSTIVE_CASES`) the sweep evaluates a
        deterministic sample of ``max_cases`` combinations drawn from a
        generator seeded by ``sample_seed`` (falling back to the search
        config's seed, then ``0``) instead of refusing or exploding.
        """
        if concurrent_failures < 1:
            raise PlacementError(
                f"concurrent_failures must be >= 1, got {concurrent_failures}"
            )
        used_servers = list(normal_result.assignment)
        if concurrent_failures > len(used_servers):
            raise PlacementError(
                f"cannot fail {concurrent_failures} of "
                f"{len(used_servers)} used servers"
            )
        kind = "server" if within_domain is None else within_domain
        if within_domain is None:
            groups: list[tuple[Optional[str], list[str]]] = [
                (None, used_servers)
            ]
        else:
            used = set(used_servers)
            groups = [
                (label, [name for name in members if name in used])
                for label, members in pool.domains(within_domain).items()
            ]
            groups = [
                (label, members)
                for label, members in groups
                if len(members) >= concurrent_failures
            ]
            if not groups:
                # No domain concentrates k used servers, so there is no
                # correlated k-fault to draw — the sweep is trivially
                # all-supported (unlike the global draw above, where
                # asking for more failures than used servers exist is a
                # caller error).
                return FailureReport(cases=())
        combos = self._combinations(
            groups, concurrent_failures, max_cases, sample_seed
        )
        items = []
        for domain, combo in combos:
            affected = {
                name
                for server in combo
                for name in normal_result.assignment[server]
            }
            items.append(
                (
                    FaultScenario(
                        failed_servers=combo, kind=kind, domain=domain
                    ),
                    tuple(sorted(affected)),
                )
            )
        return self._sweep(
            items, demands, policies, pool, relax_all, algorithm,
            key_prefix=key_prefix,
        )

    def plan_domains(
        self,
        demands: Sequence[DemandTrace],
        policies: Mapping[str, QoSPolicy] | QoSPolicy,
        pool,
        normal_result: ConsolidationResult,
        *,
        scope: str = "rack",
        relax_all: bool = False,
        algorithm: str = "genetic",
        key_prefix: str = "",
    ) -> FailureReport:
        """Whole-domain loss: every rack (or zone) fails at once.

        Only domains hosting at least one workload of the normal plan
        are swept (losing an idle domain leaves the running assignment
        untouched, exactly like the single sweep's unused servers).
        """
        if scope not in ("rack", "zone"):
            raise PlacementError(
                f"domain scope must be 'rack' or 'zone', got {scope!r}"
            )
        items = []
        for label, members in pool.domains(scope).items():
            affected = {
                name
                for server in members
                for name in normal_result.assignment.get(server, ())
            }
            if not affected:
                continue
            items.append(
                (
                    FaultScenario(
                        failed_servers=tuple(members),
                        kind=scope,
                        domain=label,
                    ),
                    tuple(sorted(affected)),
                )
            )
        return self._sweep(
            items, demands, policies, pool, relax_all, algorithm,
            key_prefix=key_prefix,
        )

    def plan_degraded(
        self,
        demands: Sequence[DemandTrace],
        policies: Mapping[str, QoSPolicy] | QoSPolicy,
        pool,
        normal_result: ConsolidationResult,
        *,
        factor: float = 0.5,
        scope: str = "server",
        relax_all: bool = False,
        algorithm: str = "genetic",
        key_prefix: str = "",
    ) -> FailureReport:
        """Degraded-server what-ifs: domains survive at scaled capacity.

        Each swept domain's servers stay in the pool with every capacity
        limit multiplied by ``factor`` (see
        :meth:`~repro.resources.pool.ResourcePool.with_degraded`); the
        workloads hosted there switch to failure-mode QoS for the
        repair window, exactly as if the servers had died — except the
        degraded capacity is still available to the re-plan.
        """
        if not 0.0 < factor < 1.0:
            raise PlacementError(
                f"degraded capacity factor must be in (0, 1), got {factor}"
            )
        base, _ = parse_scope(scope)
        items = []
        for label, members in pool.domains(base).items():
            affected = {
                name
                for server in members
                for name in normal_result.assignment.get(server, ())
            }
            if not affected:
                continue
            items.append(
                (
                    FaultScenario(
                        degraded=tuple(
                            (server, factor) for server in members
                        ),
                        kind=base,
                        domain=label if base != "server" else None,
                    ),
                    tuple(sorted(affected)),
                )
            )
        return self._sweep(
            items, demands, policies, pool, relax_all, algorithm,
            key_prefix=key_prefix,
        )

    def plan_scope(
        self,
        demands: Sequence[DemandTrace],
        policies: Mapping[str, QoSPolicy] | QoSPolicy,
        pool,
        normal_result: ConsolidationResult,
        *,
        scope: str,
        relax_all: bool = False,
        algorithm: str = "genetic",
        max_cases: Optional[int] = None,
        sample_seed: Optional[int] = None,
        key_prefix: str = "",
    ) -> FailureReport:
        """Dispatch one scope spec (see :func:`parse_scope`) to a sweep."""
        base, k = parse_scope(scope)
        if base == "server":
            if k == 1:
                return self.plan(
                    demands, policies, pool, normal_result,
                    relax_all=relax_all, algorithm=algorithm,
                    key_prefix=key_prefix,
                )
            return self.plan_multi(
                demands, policies, pool, normal_result,
                concurrent_failures=k or 2, relax_all=relax_all,
                algorithm=algorithm, max_cases=max_cases,
                sample_seed=sample_seed, key_prefix=key_prefix,
            )
        if k is None:
            return self.plan_domains(
                demands, policies, pool, normal_result, scope=base,
                relax_all=relax_all, algorithm=algorithm,
                key_prefix=key_prefix,
            )
        return self.plan_multi(
            demands, policies, pool, normal_result,
            concurrent_failures=k, relax_all=relax_all,
            algorithm=algorithm, within_domain=base, max_cases=max_cases,
            sample_seed=sample_seed, key_prefix=key_prefix,
        )

    def spare_sizing_curve(
        self,
        demands: Sequence[DemandTrace],
        policies: Mapping[str, QoSPolicy] | QoSPolicy,
        pool,
        normal_result: ConsolidationResult,
        *,
        scopes: Optional[Sequence[str]] = None,
        max_spares: int = 4,
        relax_all: bool = False,
        algorithm: str = "genetic",
        max_cases: Optional[int] = None,
        sample_seed: Optional[int] = None,
    ) -> SpareSizingCurve:
        """Smallest spare count absorbing every case, per failure scope.

        For each scope, spares are appended one at a time — clones of
        the pool's roomiest server, each in a fresh singleton failure
        domain — until the scope's sweep is fully absorbable or
        ``max_spares`` is exhausted (``spares_needed=None``). Because a
        narrower scope's fail-sets are subsets of a wider scope's, the
        resulting curve is monotone non-increasing as the scope shrinks
        (:meth:`SpareSizingCurve.monotone_in_scope` asserts exactly
        that; the hypothesis harness sweeps it over random ensembles).
        """
        if max_spares < 0:
            raise PlacementError(
                f"max_spares must be >= 0, got {max_spares}"
            )
        if scopes is None:
            derived = ["server"]
            if pool.has_topology("rack"):
                derived.append("rack")
            if pool.has_topology("zone"):
                derived.append("zone")
            scopes = derived
        template = max(
            pool.servers,
            key=lambda server: server.capacity_of(self.attribute),
        )
        points = []
        for scope in scopes:
            cases = 0
            infeasible_without_spares = 0
            spares_needed: Optional[int] = None
            for spares in range(max_spares + 1):
                spare_pool = pool.with_added(
                    *self._spare_servers(template, spares, pool)
                )
                report = self.plan_scope(
                    demands, policies, spare_pool, normal_result,
                    scope=scope, relax_all=relax_all, algorithm=algorithm,
                    max_cases=max_cases, sample_seed=sample_seed,
                    key_prefix=f"spare:{scope}:{spares}",
                )
                if spares == 0:
                    cases = len(report.cases)
                    infeasible_without_spares = len(report.infeasible_cases)
                if report.all_supported:
                    spares_needed = spares
                    break
            points.append(
                SparePoint(
                    scope=scope,
                    cases=cases,
                    infeasible_without_spares=infeasible_without_spares,
                    spares_needed=spares_needed,
                )
            )
            self.engine.instrumentation.event(
                "failure.spare_point",
                scope=scope,
                spares_needed=spares_needed,
            )
        curve = SpareSizingCurve(points=tuple(points), max_spares=max_spares)
        self.engine.instrumentation.count("failure.spare_curves")
        return curve

    def _spare_servers(self, template, count: int, pool) -> list:
        """``count`` clones of the roomiest server, in fresh domains.

        Each spare lives in its own singleton rack/zone so a spare is
        never lost together with the domain it is meant to replace.
        """
        from repro.resources.server import ServerSpec

        existing = set(pool.names())
        spares = []
        index = 0
        while len(spares) < count:
            name = f"spare-{index:02d}"
            index += 1
            if name in existing:
                continue
            spares.append(
                ServerSpec(
                    name,
                    template.cpus,
                    dict(template.attributes),
                    rack=f"{name}-rack",
                    zone=f"{name}-zone",
                )
            )
        return spares

    def _combinations(
        self,
        groups: Sequence[tuple[Optional[str], list[str]]],
        k: int,
        max_cases: Optional[int],
        sample_seed: Optional[int],
    ) -> list[tuple[Optional[str], tuple[str, ...]]]:
        """All (or a seeded sample of) k-subsets across the groups.

        The cap (``max_cases`` or :data:`MAX_EXHAUSTIVE_CASES`) guards
        the sweep against combinatorial blow-up: below it every
        combination is evaluated (``failure.sweep_exhaustive``); above
        it a deterministic seeded draw selects ``cap`` distinct
        combinations, groups weighted by their share of the space
        (``failure.sweep_sampled``, with the space size recorded on the
        ``failure.sweep_sampled`` event).
        """
        cap = MAX_EXHAUSTIVE_CASES if max_cases is None else max_cases
        if cap < 1:
            raise PlacementError(f"max_cases must be >= 1, got {cap}")
        instrumentation = self.engine.instrumentation
        weights = [math.comb(len(members), k) for _, members in groups]
        total = sum(weights)
        if total <= cap:
            instrumentation.count("failure.sweep_exhaustive")
            return [
                (label, combo)
                for (label, members), weight in zip(groups, weights)
                if weight
                for combo in itertools.combinations(members, k)
            ]
        instrumentation.count("failure.sweep_sampled")
        seed = sample_seed
        if seed is None and self.config is not None:
            seed = self.config.seed
        # A concrete default keeps the sampled sweep deterministic even
        # when neither a sample seed nor a search seed was provided.
        rng = derive_rng(0 if seed is None else int(seed))
        probabilities = [weight / total for weight in weights]
        selected: list[tuple[Optional[str], tuple[str, ...]]] = []
        seen: set[tuple[Optional[str], tuple[str, ...]]] = set()
        attempts = 0
        max_attempts = cap * 64
        while len(selected) < cap and attempts < max_attempts:
            attempts += 1
            group_index = int(rng.choice(len(groups), p=probabilities))
            label, members = groups[group_index]
            rows = rng.choice(len(members), size=k, replace=False)
            combo = tuple(
                members[row] for row in sorted(int(row) for row in rows)
            )
            if (label, combo) in seen:
                continue
            seen.add((label, combo))
            selected.append((label, combo))
        instrumentation.count("failure.cases_sampled", len(selected))
        instrumentation.event(
            "failure.sweep_sampled",
            space=total,
            cap=cap,
            selected=len(selected),
        )
        return selected

    def _sweep(
        self,
        items: Sequence[tuple[FaultScenario, tuple[str, ...]]],
        demands: Sequence[DemandTrace],
        policies: Mapping[str, QoSPolicy] | QoSPolicy,
        pool,
        relax_all: bool,
        algorithm: str,
        key_prefix: str = "",
    ) -> FailureReport:
        """Evaluate every what-if case through the execution engine."""
        payload = _FailureSweepPayload(
            commitments=self.translator.commitments,
            config=self.config,
            tolerance=self.tolerance,
            attribute=self.attribute,
            pool=pool,
            demands=tuple(demands),
            policies=policies,
            relax_all=relax_all,
            algorithm=algorithm,
            kernel=self.kernel,
            share_cache=self.share_cache,
        )
        instrumentation = self.engine.instrumentation
        with instrumentation.stage("failure_planning"):
            restored: dict[int, FailureCase] = {}
            pending: list[tuple[int, object]] = []
            for position, item in enumerate(items):
                case = self._load_case(item[0].label, key_prefix)
                if case is not None:
                    restored[position] = case
                else:
                    pending.append((position, item))
            if restored:
                instrumentation.count("failure.case_resumes", len(restored))
                instrumentation.event(
                    "failure.cases_resumed",
                    restored=len(restored),
                    pending=len(pending),
                )
            # Map in parallelism-sized waves so each wave's cases are
            # checkpointed as soon as they exist: a kill mid-sweep
            # loses at most the in-flight wave, and the resume picks up
            # every completed case. (One session spans all waves, so
            # the payload still broadcasts once.)
            computed: list[FailureCase] = []
            if pending:
                with self.engine.session(payload) as session:
                    wave = max(1, int(getattr(session, "parallelism", 1)))
                    for start in range(0, len(pending), wave):
                        batch = pending[start : start + wave]
                        for case in session.map(
                            _failure_case_worker,
                            [item for _, item in batch],
                        ):
                            computed.append(case)
                            self._save_case(case, key_prefix)
            cases: list[FailureCase] = [None] * len(items)  # type: ignore[list-item]
            for case_position, case in restored.items():
                cases[case_position] = case
            for (case_position, _), case in zip(pending, computed):
                cases[case_position] = case
        instrumentation.count("failure.cases", len(items))
        return FailureReport(cases=tuple(cases))

    def _case_key(self, label: str, key_prefix: str = "") -> str:
        if key_prefix:
            return f"failure/{key_prefix}/{label}"
        return f"failure/{label}"

    def _load_case(
        self, label: str, key_prefix: str = ""
    ) -> FailureCase | None:
        if self.checkpointer is None:
            return None
        payload = self.checkpointer.load(self._case_key(label, key_prefix))
        if payload is None:
            return None
        return _case_from_payload(payload)

    def _save_case(self, case: FailureCase, key_prefix: str = "") -> None:
        if self.checkpointer is not None:
            self.checkpointer.save(
                self._case_key(case.label, key_prefix),
                _case_to_payload(case),
            )

    def _evaluate_failure(
        self,
        scenario: FaultScenario,
        affected: set[str],
        demand_by_name: Mapping[str, DemandTrace],
        policies: Mapping[str, QoSPolicy] | QoSPolicy,
        pool,
        *,
        relax_all: bool,
        algorithm: str,
        scratch: _SweepScratch | None = None,
    ) -> FailureCase:
        surviving = pool
        if scenario.failed_servers:
            surviving = surviving.without(*scenario.failed_servers)
        if scenario.degraded:
            surviving = surviving.with_degraded(dict(scenario.degraded))
        pairs = []
        mix = []
        for name, demand in demand_by_name.items():
            policy = self._policy_for(policies, name)
            failure_mode = relax_all or name in affected
            qos = policy.mode(failure_mode=failure_mode)
            key = (name, failure_mode)
            pair = (
                scratch.translations.get(key)
                if scratch is not None
                else None
            )
            if pair is None:
                pair = self.translator.translate(demand, qos).pair
                if scratch is not None:
                    scratch.translations[key] = pair
            pairs.append(pair)
            mix.append(key)

        consolidator = Consolidator(
            surviving,
            self.translator.commitments.cos2,
            config=self.config,
            tolerance=self.tolerance,
            attribute=self.attribute,
            kernel=self.kernel,
        )
        try:
            if scratch is not None:
                from repro.placement.evaluation import PlacementEvaluator

                signature = tuple(mix)
                evaluator = scratch.evaluators.get(signature)
                if evaluator is None:
                    evaluator = PlacementEvaluator(
                        pairs,
                        self.translator.commitments.cos2,
                        tolerance=self.tolerance,
                        kernel=self.kernel,
                        instrumentation=consolidator.engine.instrumentation,
                        translations=scratch.fused_translations,
                    )
                    scratch.evaluators[signature] = evaluator
                result = consolidator.consolidate_with_evaluator(
                    evaluator, algorithm=algorithm
                )
            else:
                result = consolidator.consolidate(pairs, algorithm=algorithm)
        except PlacementError:
            return FailureCase(
                failed_servers=scenario.failed_servers,
                feasible=False,
                affected_workloads=tuple(sorted(affected)),
                result=None,
                kind=scenario.kind,
                domain=scenario.domain,
                degraded=scenario.degraded,
            )
        return FailureCase(
            failed_servers=scenario.failed_servers,
            feasible=True,
            affected_workloads=tuple(sorted(affected)),
            result=result,
            kind=scenario.kind,
            domain=scenario.domain,
            degraded=scenario.degraded,
        )

    @staticmethod
    def _policy_for(
        policies: Mapping[str, QoSPolicy] | QoSPolicy, name: str
    ) -> QoSPolicy:
        if isinstance(policies, QoSPolicy):
            return policies
        try:
            return policies[name]
        except KeyError:
            raise PlacementError(
                f"no QoS policy given for workload {name!r}"
            ) from None
