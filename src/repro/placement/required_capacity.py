"""Required-capacity search (Section VI-A).

Given a set of workloads tentatively assigned to a server, find the
smallest capacity value that satisfies the pool's CoS commitments — the
server's *required capacity* ``R``. The paper uses a binary search, which
is sound because commitment satisfaction is monotone in capacity: more
capacity can only raise the measured theta and shorten deferrals.

Preconditions mirror the paper: if the sum of peak CoS1 allocations
exceeds the capacity limit the workloads do not fit at all; otherwise the
search brackets between that CoS1 peak (the floor any valid capacity must
reach) and the attribute's capacity limit ``L``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.cos import CoSCommitment
from repro.exceptions import SimulationError
from repro.placement.simulator import AccessReport, SingleServerSimulator
from repro.traces.allocation import CoSAllocationPair

DEFAULT_TOLERANCE = 0.01


@dataclass(frozen=True)
class RequiredCapacityResult:
    """Outcome of the required-capacity search for one server."""

    fits: bool
    required_capacity: float
    report: Optional[AccessReport]


def required_capacity(
    pairs: Sequence[CoSAllocationPair],
    capacity_limit: float,
    commitment: CoSCommitment,
    tolerance: float = DEFAULT_TOLERANCE,
    simulator: SingleServerSimulator | None = None,
) -> RequiredCapacityResult:
    """Binary-search the smallest capacity satisfying the commitments.

    Parameters
    ----------
    pairs:
        The workloads assigned to the server (ignored when ``simulator``
        is supplied prebuilt).
    capacity_limit:
        The attribute's capacity limit ``L``; the search never reports a
        required capacity above it.
    commitment:
        The pool's CoS2 commitment (theta and deadline).
    tolerance:
        Absolute capacity resolution of the search; the returned value
        satisfies the commitments and is within ``tolerance`` of the true
        minimum.

    Returns a result with ``fits=False`` when even the full limit cannot
    satisfy the commitments (or CoS1 peaks alone exceed the limit).
    """
    if capacity_limit <= 0:
        raise SimulationError(
            f"capacity_limit must be > 0, got {capacity_limit}"
        )
    if tolerance <= 0:
        raise SimulationError(f"tolerance must be > 0, got {tolerance}")
    if simulator is None:
        simulator = SingleServerSimulator.from_pairs(list(pairs))
    calendar = simulator.calendar

    if simulator.cos1_peak > capacity_limit + 1e-9:
        return RequiredCapacityResult(
            fits=False, required_capacity=float("inf"), report=None
        )

    report_at_limit = simulator.evaluate(capacity_limit)
    if not report_at_limit.satisfies(commitment, calendar):
        return RequiredCapacityResult(
            fits=False, required_capacity=float("inf"), report=report_at_limit
        )

    # Bracket: `high` always satisfies; `low` is a floor that may not.
    low = max(simulator.cos1_peak, tolerance)
    high = float(capacity_limit)
    best_report = report_at_limit
    if low < high:
        report_at_low = simulator.evaluate(low)
        if report_at_low.satisfies(commitment, calendar):
            return RequiredCapacityResult(
                fits=True, required_capacity=low, report=report_at_low
            )
        while high - low > tolerance:
            mid = (low + high) / 2.0
            report = simulator.evaluate(mid)
            if report.satisfies(commitment, calendar):
                high = mid
                best_report = report
            else:
                low = mid
    return RequiredCapacityResult(
        fits=True, required_capacity=high, report=best_report
    )
