"""Shared assignment evaluation with caching.

Every placement algorithm (genetic, greedy, bin-packing comparisons)
needs the same primitive: "what is the required capacity of this subset
of workloads on this server?". The :class:`PlacementEvaluator` owns the
stacked allocation matrices, runs the simulator + binary search, and
memoises results by (server capacity profile, workload subset) — the
genetic search re-visits the same server contents constantly, so the
cache is what makes the search affordable.

For parallel backends the evaluator exposes a picklable
:class:`EvaluationPayload` (the matrices plus commitment parameters) and
the pure :func:`evaluate_group_worker`; workers stay stateless, compute
only cache-missing subsets, and the driver reconciles results back into
the single authoritative cache via :meth:`PlacementEvaluator.install`,
so the memoisation design survives the fan-out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.cos import CoSCommitment
from repro.exceptions import PlacementError
from repro.placement.required_capacity import (
    DEFAULT_TOLERANCE,
    RequiredCapacityResult,
    required_capacity,
)
from repro.placement.simulator import SingleServerSimulator
from repro.resources.server import ServerSpec
from repro.traces.allocation import CoSAllocationPair
from repro.traces.calendar import TraceCalendar


@dataclass(frozen=True)
class ServerEvaluation:
    """Required capacity of one workload subset on one server."""

    fits: bool
    required: float
    utilization: float

    @property
    def feasible(self) -> bool:
        return self.fits


GroupKey = tuple[float, frozenset[int]]


@dataclass(frozen=True)
class EvaluationPayload:
    """Everything a stateless worker needs to evaluate workload subsets.

    Broadcast once per executor session; ``cos1``/``cos2`` are the
    stacked per-workload allocation matrices.
    """

    cos1: np.ndarray
    cos2: np.ndarray
    calendar: TraceCalendar
    commitment: CoSCommitment
    tolerance: float


def _evaluate_rows(
    cos1: np.ndarray,
    cos2: np.ndarray,
    calendar: TraceCalendar,
    commitment: CoSCommitment,
    tolerance: float,
    rows: Sequence[int],
    limit: float,
) -> ServerEvaluation:
    """Pure evaluation of one workload subset at one capacity limit."""
    index = np.asarray(sorted(rows), dtype=int)
    simulator = SingleServerSimulator(
        cos1[index].sum(axis=0), cos2[index].sum(axis=0), calendar
    )
    result = required_capacity(
        [],
        capacity_limit=limit,
        commitment=commitment,
        tolerance=tolerance,
        simulator=simulator,
    )
    if not result.fits:
        return ServerEvaluation(
            fits=False, required=float("inf"), utilization=float("inf")
        )
    return ServerEvaluation(
        fits=True,
        required=result.required_capacity,
        utilization=min(1.0, result.required_capacity / limit),
    )


def evaluate_group_worker(
    payload: EvaluationPayload, item: tuple[float, tuple[int, ...]]
) -> ServerEvaluation:
    """Executor work unit: ``item`` is ``(capacity_limit, workload_rows)``.

    A pure function of the broadcast payload and the item, so results
    are identical across serial and parallel backends.
    """
    limit, rows = item
    return _evaluate_rows(
        payload.cos1,
        payload.cos2,
        payload.calendar,
        payload.commitment,
        payload.tolerance,
        rows,
        limit,
    )


class PlacementEvaluator:
    """Evaluates workload subsets against server capacities, with memoing."""

    def __init__(
        self,
        pairs: Sequence[CoSAllocationPair],
        commitment: CoSCommitment,
        tolerance: float = DEFAULT_TOLERANCE,
    ):
        if not pairs:
            raise PlacementError("need at least one workload to place")
        names = [pair.name for pair in pairs]
        if len(set(names)) != len(names):
            raise PlacementError("workload names must be unique")
        self.pairs = list(pairs)
        self.names = names
        self.commitment = commitment
        self.tolerance = tolerance
        self.calendar: TraceCalendar = pairs[0].calendar
        for pair in pairs:
            self.calendar.require_compatible(pair.calendar)
        self._cos1 = np.vstack([pair.cos1.values for pair in self.pairs])
        self._cos2 = np.vstack([pair.cos2.values for pair in self.pairs])
        self._cache: dict[tuple[float, frozenset[int]], ServerEvaluation] = {}

    @property
    def n_workloads(self) -> int:
        return len(self.pairs)

    def index_of(self, name: str) -> int:
        try:
            return self.names.index(name)
        except ValueError:
            raise PlacementError(f"unknown workload {name!r}") from None

    def peak_allocations(self) -> np.ndarray:
        """Per-workload peak total allocation (the C_peak contributions)."""
        return (self._cos1 + self._cos2).max(axis=1)

    def evaluate_group(
        self,
        indices: Sequence[int],
        server: ServerSpec,
        attribute: str = "cpu",
    ) -> ServerEvaluation:
        """Required capacity of the workloads ``indices`` on ``server``."""
        key = self.cache_key(indices, server, attribute)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        evaluation = self._evaluate_uncached(list(indices), server, attribute)
        self._cache[key] = evaluation
        return evaluation

    def cache_key(
        self, indices: Sequence[int], server: ServerSpec, attribute: str = "cpu"
    ) -> GroupKey:
        """The memoisation key for one (server, workload subset) pairing."""
        return (server.capacity_of(attribute), frozenset(indices))

    def is_cached(self, key: GroupKey) -> bool:
        return key in self._cache

    def install(self, key: GroupKey, evaluation: ServerEvaluation) -> None:
        """Merge a worker-computed evaluation into the driver-side cache."""
        self._cache.setdefault(key, evaluation)

    def worker_payload(self) -> EvaluationPayload:
        """The picklable state a stateless worker needs (broadcast once)."""
        return EvaluationPayload(
            cos1=self._cos1,
            cos2=self._cos2,
            calendar=self.calendar,
            commitment=self.commitment,
            tolerance=self.tolerance,
        )

    def search_result(
        self,
        indices: Sequence[int],
        server: ServerSpec,
        attribute: str = "cpu",
    ) -> RequiredCapacityResult:
        """Full (uncached) search result, including the access report."""
        simulator = self._simulator_for(list(indices))
        return required_capacity(
            [],
            capacity_limit=server.capacity_of(attribute),
            commitment=self.commitment,
            tolerance=self.tolerance,
            simulator=simulator,
        )

    def _evaluate_uncached(
        self, indices: list[int], server: ServerSpec, attribute: str
    ) -> ServerEvaluation:
        if not indices:
            return ServerEvaluation(fits=True, required=0.0, utilization=0.0)
        rows = sorted(indices)
        if rows[0] < 0 or rows[-1] >= self.n_workloads:
            raise PlacementError(f"workload indices out of range: {indices}")
        return _evaluate_rows(
            self._cos1,
            self._cos2,
            self.calendar,
            self.commitment,
            self.tolerance,
            rows,
            server.capacity_of(attribute),
        )

    def _simulator_for(self, indices: list[int]) -> SingleServerSimulator:
        if not indices:
            raise PlacementError("cannot build a simulator for no workloads")
        rows = np.asarray(sorted(indices), dtype=int)
        if rows.size and (rows[0] < 0 or rows[-1] >= self.n_workloads):
            raise PlacementError(f"workload indices out of range: {indices}")
        cos1 = self._cos1[rows].sum(axis=0)
        cos2 = self._cos2[rows].sum(axis=0)
        return SingleServerSimulator(cos1, cos2, self.calendar)
