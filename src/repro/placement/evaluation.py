"""Shared assignment evaluation with caching.

Every placement algorithm (genetic, greedy, bin-packing comparisons)
needs the same primitive: "what is the required capacity of this subset
of workloads on this server?". The :class:`PlacementEvaluator` owns the
stacked allocation matrices, runs the simulator + binary search, and
memoises results by (server capacity profile, workload subset) — the
genetic search re-visits the same server contents constantly, so the
cache is what makes the search affordable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.cos import CoSCommitment
from repro.exceptions import PlacementError
from repro.placement.required_capacity import (
    DEFAULT_TOLERANCE,
    RequiredCapacityResult,
    required_capacity,
)
from repro.placement.simulator import SingleServerSimulator
from repro.resources.server import ServerSpec
from repro.traces.allocation import CoSAllocationPair
from repro.traces.calendar import TraceCalendar


@dataclass(frozen=True)
class ServerEvaluation:
    """Required capacity of one workload subset on one server."""

    fits: bool
    required: float
    utilization: float

    @property
    def feasible(self) -> bool:
        return self.fits


class PlacementEvaluator:
    """Evaluates workload subsets against server capacities, with memoing."""

    def __init__(
        self,
        pairs: Sequence[CoSAllocationPair],
        commitment: CoSCommitment,
        tolerance: float = DEFAULT_TOLERANCE,
    ):
        if not pairs:
            raise PlacementError("need at least one workload to place")
        names = [pair.name for pair in pairs]
        if len(set(names)) != len(names):
            raise PlacementError("workload names must be unique")
        self.pairs = list(pairs)
        self.names = names
        self.commitment = commitment
        self.tolerance = tolerance
        self.calendar: TraceCalendar = pairs[0].calendar
        for pair in pairs:
            self.calendar.require_compatible(pair.calendar)
        self._cos1 = np.vstack([pair.cos1.values for pair in self.pairs])
        self._cos2 = np.vstack([pair.cos2.values for pair in self.pairs])
        self._cache: dict[tuple[float, frozenset[int]], ServerEvaluation] = {}

    @property
    def n_workloads(self) -> int:
        return len(self.pairs)

    def index_of(self, name: str) -> int:
        try:
            return self.names.index(name)
        except ValueError:
            raise PlacementError(f"unknown workload {name!r}") from None

    def peak_allocations(self) -> np.ndarray:
        """Per-workload peak total allocation (the C_peak contributions)."""
        return (self._cos1 + self._cos2).max(axis=1)

    def evaluate_group(
        self,
        indices: Sequence[int],
        server: ServerSpec,
        attribute: str = "cpu",
    ) -> ServerEvaluation:
        """Required capacity of the workloads ``indices`` on ``server``."""
        key = (server.capacity_of(attribute), frozenset(indices))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        evaluation = self._evaluate_uncached(list(indices), server, attribute)
        self._cache[key] = evaluation
        return evaluation

    def search_result(
        self,
        indices: Sequence[int],
        server: ServerSpec,
        attribute: str = "cpu",
    ) -> RequiredCapacityResult:
        """Full (uncached) search result, including the access report."""
        simulator = self._simulator_for(list(indices))
        return required_capacity(
            [],
            capacity_limit=server.capacity_of(attribute),
            commitment=self.commitment,
            tolerance=self.tolerance,
            simulator=simulator,
        )

    def _evaluate_uncached(
        self, indices: list[int], server: ServerSpec, attribute: str
    ) -> ServerEvaluation:
        if not indices:
            return ServerEvaluation(fits=True, required=0.0, utilization=0.0)
        limit = server.capacity_of(attribute)
        result = required_capacity(
            [],
            capacity_limit=limit,
            commitment=self.commitment,
            tolerance=self.tolerance,
            simulator=self._simulator_for(indices),
        )
        if not result.fits:
            return ServerEvaluation(
                fits=False, required=float("inf"), utilization=float("inf")
            )
        return ServerEvaluation(
            fits=True,
            required=result.required_capacity,
            utilization=min(1.0, result.required_capacity / limit),
        )

    def _simulator_for(self, indices: list[int]) -> SingleServerSimulator:
        if not indices:
            raise PlacementError("cannot build a simulator for no workloads")
        rows = np.asarray(sorted(indices), dtype=int)
        if rows.size and (rows[0] < 0 or rows[-1] >= self.n_workloads):
            raise PlacementError(f"workload indices out of range: {indices}")
        cos1 = self._cos1[rows].sum(axis=0)
        cos2 = self._cos2[rows].sum(axis=0)
        return SingleServerSimulator(cos1, cos2, self.calendar)
