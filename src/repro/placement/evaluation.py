"""Shared assignment evaluation with caching.

Every placement algorithm (genetic, greedy, bin-packing comparisons)
needs the same primitive: "what is the required capacity of this subset
of workloads on this server?". The :class:`PlacementEvaluator` owns the
stacked allocation matrices, runs the simulator + capacity search, and
memoises results by (server capacity profile, workload subset) — the
genetic search re-visits the same server contents constantly, so the
cache is what makes the search affordable.

Two execution shapes are supported:

* the scalar path (:func:`evaluate_group_worker`) runs one subset's
  binary search at a time, exactly as the paper describes it;
* the batch path (:meth:`PlacementEvaluator.evaluate_groups`,
  :func:`evaluate_groups_worker`) stacks all cache-missing subsets into
  a :class:`~repro.placement.kernels.BatchSimulator` and solves every
  bracket simultaneously with
  :func:`~repro.placement.kernels.required_capacity_batch` — same
  results, one lock-step array program instead of N Python loops.

For parallel backends the evaluator exposes a picklable
:class:`EvaluationPayload` (the matrices plus commitment parameters) and
the pure worker functions; workers stay stateless, compute only
cache-missing subsets, and the driver reconciles results back into the
single authoritative cache via :meth:`PlacementEvaluator.install`, so
the memoisation design survives the fan-out.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.engine.instrumentation import Instrumentation
from repro.core.cos import CoSCommitment
from repro.exceptions import PlacementError
from repro.placement.fused import (
    TranslationCache,
    fused_required_capacity,
)
from repro.placement.kernels import (
    BatchSearchStats,
    BatchSimulator,
    required_capacity_batch,
)
from repro.placement.required_capacity import (
    DEFAULT_TOLERANCE,
    RequiredCapacityResult,
    required_capacity,
)
from repro.placement.simulator import SingleServerSimulator
from repro.resources.server import ServerSpec
from repro.traces.allocation import CoSAllocationPair
from repro.traces.calendar import TraceCalendar

#: Capacity-search implementations selectable on the evaluator.
#:
#: * ``"batch"`` — simultaneous bisection, bit-identical to ``"scalar"``;
#: * ``"analytic"`` — batch kernel with the closed-form theta inversion
#:   (results within the search tolerance of the scalar path);
#: * ``"fused"`` — generation-scale float32 fast path over compressed
#:   traces with float64 verification (bit-identical to ``"batch"``;
#:   see :mod:`repro.placement.fused`);
#: * ``"scalar"`` — the paper's per-subset binary search (reference).
KERNELS = ("batch", "analytic", "fused", "scalar")


def _solver_mode(kernel: str) -> str:
    """Map an evaluator kernel name to the batch solver's mode."""
    return "analytic" if kernel == "analytic" else "bisect"


@dataclass(frozen=True)
class ServerEvaluation:
    """Required capacity of one workload subset on one server."""

    fits: bool
    required: float
    utilization: float

    @property
    def feasible(self) -> bool:
        return self.fits


#: Memoisation key: (server capacity, canonically sorted subset rows).
GroupKey = tuple[float, tuple[int, ...]]

#: One batched work item: (capacity limit, sorted rows, probe or None).
GroupItem = tuple[float, "tuple[int, ...]", Optional[float]]


@dataclass(frozen=True)
class EvaluationPayload:
    """Everything a stateless worker needs to evaluate workload subsets.

    Broadcast once per executor session; ``cos1``/``cos2`` are the
    stacked per-workload allocation matrices — by far the largest part,
    which is why the parallel backend publishes them zero-copy through
    shared memory when it can (see :mod:`repro.engine.broadcast`).
    """

    cos1: np.ndarray
    cos2: np.ndarray
    calendar: TraceCalendar
    commitment: CoSCommitment
    tolerance: float
    kernel: str = "batch"
    fingerprint: Optional[str] = None

    def __getstate__(self) -> dict:
        # The lazily attached fused-translation scratch (see
        # ``_worker_translations``) holds live numpy buffers; it must
        # never cross a process boundary.
        state = dict(self.__dict__)
        state.pop("_fused_translations", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


def _worker_translations(
    payload: EvaluationPayload,
) -> Optional[TranslationCache]:
    """The payload's fused-translation memo, attached lazily to it.

    Mirrors :func:`repro.placement.failure._scratch_for`: each worker
    process unpickles its own payload copy (broadcast once per
    session), so hanging the cache off that copy keeps it process-local
    without a module-level registry, and a new session starts cold by
    construction. ``object.__setattr__`` is the sanctioned escape hatch
    for caching on a frozen dataclass.
    """
    if payload.kernel != "fused" or payload.fingerprint is None:
        return None
    cache = getattr(payload, "_fused_translations", None)
    if cache is None:
        cache = TranslationCache()
        object.__setattr__(payload, "_fused_translations", cache)
    return cache


def _evaluation_from_result(
    result: RequiredCapacityResult, limit: float
) -> ServerEvaluation:
    if not result.fits:
        return ServerEvaluation(
            fits=False, required=float("inf"), utilization=float("inf")
        )
    return ServerEvaluation(
        fits=True,
        required=result.required_capacity,
        utilization=min(1.0, result.required_capacity / limit),
    )


def _evaluate_rows(
    cos1: np.ndarray,
    cos2: np.ndarray,
    calendar: TraceCalendar,
    commitment: CoSCommitment,
    tolerance: float,
    rows: Sequence[int],
    limit: float,
) -> ServerEvaluation:
    """Scalar evaluation of one canonically-sorted subset at one limit."""
    index = np.asarray(rows, dtype=int)
    simulator = SingleServerSimulator(
        cos1[index].sum(axis=0), cos2[index].sum(axis=0), calendar
    )
    result = required_capacity(
        [],
        capacity_limit=limit,
        commitment=commitment,
        tolerance=tolerance,
        simulator=simulator,
    )
    return _evaluation_from_result(result, limit)


def _evaluate_items_batched(
    cos1: np.ndarray,
    cos2: np.ndarray,
    calendar: TraceCalendar,
    commitment: CoSCommitment,
    tolerance: float,
    items: Sequence[GroupItem],
    kernel: str = "batch",
    translations: Optional[TranslationCache] = None,
    fingerprint: Optional[str] = None,
) -> tuple[list[ServerEvaluation], BatchSearchStats]:
    """Solve every item's capacity search in one batched kernel solve."""
    if len(items) == 1 and items[0][2] is None and kernel in ("batch", "fused"):
        # A lone search gains nothing from the lock-step machinery (its
        # result is bit-identical either way); the scalar loop has less
        # per-call overhead than either batched kernel.
        limit, rows, _ = items[0]
        evaluation = _evaluate_rows(
            cos1, cos2, calendar, commitment, tolerance, rows, limit
        )
        return [evaluation], BatchSearchStats(
            rows=1, kernel_calls=0, bracket_iterations=0, probe_hits=0
        )
    subsets = [rows for _, rows, _ in items]
    limits = np.asarray([limit for limit, _, _ in items], dtype=float)
    probe_values = [probe for _, _, probe in items]
    probes: Optional[np.ndarray] = None
    if any(probe is not None for probe in probe_values):
        probes = np.asarray(
            [
                float("nan") if probe is None else float(probe)
                for probe in probe_values
            ],
            dtype=float,
        )
    if kernel == "fused":
        solved = fused_required_capacity(
            cos1,
            cos2,
            subsets,
            calendar,
            limits,
            commitment,
            tolerance=tolerance,
            probes=probes,
            cache=translations,
            fingerprint=fingerprint,
        )
    else:
        batch = BatchSimulator.from_subsets(cos1, cos2, subsets, calendar)
        solved = required_capacity_batch(
            batch,
            limits,
            commitment,
            tolerance=tolerance,
            probes=probes,
            mode=_solver_mode(kernel),
        )
    evaluations = [
        _evaluation_from_result(result, float(limit))
        for result, limit in zip(solved.results, limits)
    ]
    return evaluations, solved.stats


def evaluate_group_worker(
    payload: EvaluationPayload, item: tuple[float, tuple[int, ...]]
) -> ServerEvaluation:
    """Executor work unit: ``item`` is ``(capacity_limit, workload_rows)``.

    A pure function of the broadcast payload and the item, so results
    are identical across serial and parallel backends. This is the
    scalar (one search per call) granularity; see
    :func:`evaluate_groups_worker` for the batched one.
    """
    limit, rows = item
    return _evaluate_rows(
        payload.cos1,
        payload.cos2,
        payload.calendar,
        payload.commitment,
        payload.tolerance,
        tuple(sorted(rows)),
        limit,
    )


def evaluate_groups_worker(
    payload: EvaluationPayload, items: tuple[GroupItem, ...]
) -> tuple[tuple[ServerEvaluation, ...], tuple[int, int, int, int, int, int]]:
    """Executor work unit: a whole chunk of subsets in one kernel solve.

    Returns the evaluations in item order plus the solver's work stats
    ``(rows, kernel_calls, bracket_iterations, probe_hits, fused_rows,
    f32_retries)`` so the driver can fold them into its
    instrumentation. Honours the payload's ``kernel`` selection —
    ``"scalar"`` runs the per-subset reference loop instead (the
    benchmark's baseline arm).
    """
    if not items:
        return (), (0, 0, 0, 0, 0, 0)
    if payload.kernel == "scalar":
        evaluations = tuple(
            _evaluate_rows(
                payload.cos1,
                payload.cos2,
                payload.calendar,
                payload.commitment,
                payload.tolerance,
                rows,
                limit,
            )
            for limit, rows, _ in items
        )
        return evaluations, (len(items), 0, 0, 0, 0, 0)
    evaluations_list, stats = _evaluate_items_batched(
        payload.cos1,
        payload.cos2,
        payload.calendar,
        payload.commitment,
        payload.tolerance,
        items,
        kernel=payload.kernel,
        translations=_worker_translations(payload),
        fingerprint=payload.fingerprint,
    )
    return tuple(evaluations_list), (
        stats.rows,
        stats.kernel_calls,
        stats.bracket_iterations,
        stats.probe_hits,
        stats.fused_rows,
        stats.f32_retries,
    )


class PlacementEvaluator:
    """Evaluates workload subsets against server capacities, with memoing."""

    def __init__(
        self,
        pairs: Sequence[CoSAllocationPair],
        commitment: CoSCommitment,
        tolerance: float = DEFAULT_TOLERANCE,
        *,
        kernel: str = "batch",
        instrumentation: Optional[Instrumentation] = None,
        translations: Optional[TranslationCache] = None,
    ):
        if not pairs:
            raise PlacementError("need at least one workload to place")
        if kernel not in KERNELS:
            raise PlacementError(
                f"unknown capacity-search kernel {kernel!r}; "
                f"expected one of {KERNELS}"
            )
        names = [pair.name for pair in pairs]
        if len(set(names)) != len(names):
            raise PlacementError("workload names must be unique")
        self.pairs = list(pairs)
        self.names = names
        self._index_by_name = {name: index for index, name in enumerate(names)}
        self.commitment = commitment
        self.tolerance = tolerance
        self.kernel = kernel
        self.instrumentation = instrumentation
        self.calendar: TraceCalendar = pairs[0].calendar
        for pair in pairs:
            self.calendar.require_compatible(pair.calendar)
        self._cos1 = np.vstack([pair.cos1.values for pair in self.pairs])
        self._cos2 = np.vstack([pair.cos2.values for pair in self.pairs])
        self._cache: dict[GroupKey, ServerEvaluation] = {}
        # Fused-kernel state: the per-group translation memo (sharable
        # across evaluators, e.g. one failure sweep's per-QoS-mix
        # evaluators) and the lazily computed content fingerprint that
        # keys it.
        if translations is not None:
            self._translations: Optional[TranslationCache] = translations
        elif kernel == "fused":
            self._translations = TranslationCache()
        else:
            self._translations = None
        self._fingerprint: Optional[str] = None

    @property
    def n_workloads(self) -> int:
        return len(self.pairs)

    def index_of(self, name: str) -> int:
        try:
            return self._index_by_name[name]
        except KeyError:
            raise PlacementError(f"unknown workload {name!r}") from None

    def peak_allocations(self) -> np.ndarray:
        """Per-workload peak total allocation (the C_peak contributions)."""
        return (self._cos1 + self._cos2).max(axis=1)

    def evaluate_group(
        self,
        indices: Sequence[int],
        server: ServerSpec,
        attribute: str = "cpu",
    ) -> ServerEvaluation:
        """Required capacity of the workloads ``indices`` on ``server``."""
        key = self.cache_key(indices, server, attribute)
        cached = self._cache.get(key)
        if cached is not None:
            self._count("placement.cache_hits")
            return cached
        self._count("placement.cache_misses")
        evaluation = self._evaluate_key(key)
        self._cache[key] = evaluation
        return evaluation

    def evaluate_groups(
        self, items: Sequence[tuple[float, Sequence[int]]]
    ) -> list[ServerEvaluation]:
        """Evaluate many ``(capacity limit, subset)`` items at once.

        Cache-hitting items are answered from the memo; the misses are
        stacked into one :class:`BatchSimulator` and solved by a single
        simultaneous bisection, then installed in the cache. Results
        are identical to calling :meth:`evaluate_group` one by one.
        """
        keys = [
            (float(limit), self._canonical_rows(rows))
            for limit, rows in items
        ]
        missing: dict[GroupKey, None] = {}
        for key in keys:
            if key in self._cache:
                self._count("placement.cache_hits")
            elif key not in missing:
                self._count("placement.cache_misses")
                missing[key] = None
        for key, evaluation in zip(missing, self._solve_missing(list(missing))):
            self._cache[key] = evaluation
        return [self._cache[key] for key in keys]

    def cache_key(
        self, indices: Sequence[int], server: ServerSpec, attribute: str = "cpu"
    ) -> GroupKey:
        """The memoisation key for one (server, workload subset) pairing.

        The subset is canonicalised (sorted, de-duplicated) here, once,
        so every downstream consumer — the scalar path, the batch
        kernel, worker shipping — reuses the same sorted tuple instead
        of re-sorting per evaluation.
        """
        return (server.capacity_of(attribute), self._canonical_rows(indices))

    def is_cached(self, key: GroupKey) -> bool:
        return key in self._cache

    def install(self, key: GroupKey, evaluation: ServerEvaluation) -> None:
        """Merge a worker-computed evaluation into the driver-side cache."""
        self._cache.setdefault(key, evaluation)

    def record_search_stats(
        self, stats: Sequence[int] | BatchSearchStats
    ) -> None:
        """Fold one batch solve's work accounting into the counters.

        Every ``kernel.*`` counter is recorded on every call — zero
        increments included — so all kernel modes surface the same
        counter set in :meth:`Instrumentation.counters_since` deltas
        (the fused counters simply stay at zero for the other modes).
        """
        if isinstance(stats, BatchSearchStats):
            values: Sequence[int] = (
                stats.rows,
                stats.kernel_calls,
                stats.bracket_iterations,
                stats.probe_hits,
                stats.fused_rows,
                stats.f32_retries,
            )
        else:
            values = tuple(stats) + (0,) * (6 - len(stats))
        names = (
            "kernel.rows",
            "kernel.calls",
            "kernel.bracket_iterations",
            "kernel.probe_hits",
            "kernel.fused_rows",
            "kernel.f32_retries",
        )
        for name, value in zip(names, values):
            self._count(name, value)

    def content_fingerprint(self) -> str:
        """Digest of everything a fused translation's content depends on.

        The same scheme as :func:`repro.core.framework.planning_fingerprint`
        scoped to the translation inputs: the stacked allocation
        matrices, the commitment, the tolerance, and the calendar. Two
        evaluators with equal fingerprints produce bit-identical
        translations for equal row subsets, which is what lets one
        :class:`TranslationCache` serve many evaluators.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            digest.update(self._cos1.tobytes())
            digest.update(self._cos2.tobytes())
            digest.update(repr(self.commitment).encode("utf-8"))
            digest.update(repr(self.calendar).encode("utf-8"))
            digest.update(repr(float(self.tolerance)).encode("utf-8"))
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def worker_payload(self) -> EvaluationPayload:
        """The picklable state a stateless worker needs (broadcast once)."""
        return EvaluationPayload(
            cos1=self._cos1,
            cos2=self._cos2,
            calendar=self.calendar,
            commitment=self.commitment,
            tolerance=self.tolerance,
            kernel=self.kernel,
            fingerprint=(
                self.content_fingerprint()
                if self.kernel == "fused"
                else None
            ),
        )

    def search_result(
        self,
        indices: Sequence[int],
        server: ServerSpec,
        attribute: str = "cpu",
    ) -> RequiredCapacityResult:
        """Full (uncached) search result, including the access report."""
        simulator = self._simulator_for(list(indices))
        return required_capacity(
            [],
            capacity_limit=server.capacity_of(attribute),
            commitment=self.commitment,
            tolerance=self.tolerance,
            simulator=simulator,
        )

    def _canonical_rows(self, indices: Sequence[int]) -> tuple[int, ...]:
        rows = tuple(sorted({int(index) for index in indices}))
        if rows and (rows[0] < 0 or rows[-1] >= self.n_workloads):
            raise PlacementError(f"workload indices out of range: {indices}")
        return rows

    def _evaluate_key(self, key: GroupKey) -> ServerEvaluation:
        limit, rows = key
        if not rows:
            return ServerEvaluation(fits=True, required=0.0, utilization=0.0)
        if self.kernel != "scalar":
            evaluations, stats = _evaluate_items_batched(
                self._cos1,
                self._cos2,
                self.calendar,
                self.commitment,
                self.tolerance,
                [(limit, rows, None)],
                kernel=self.kernel,
                translations=self._translations,
                fingerprint=self._kernel_fingerprint(),
            )
            self.record_search_stats(stats)
            return evaluations[0]
        return _evaluate_rows(
            self._cos1,
            self._cos2,
            self.calendar,
            self.commitment,
            self.tolerance,
            rows,
            limit,
        )

    def _solve_missing(
        self, missing: Sequence[GroupKey]
    ) -> list[ServerEvaluation]:
        nonempty = [(limit, rows, None) for limit, rows in missing if rows]
        if self.kernel != "scalar" and nonempty:
            solved, stats = _evaluate_items_batched(
                self._cos1,
                self._cos2,
                self.calendar,
                self.commitment,
                self.tolerance,
                nonempty,
                kernel=self.kernel,
                translations=self._translations,
                fingerprint=self._kernel_fingerprint(),
            )
            self.record_search_stats(stats)
            solved_by_key = {
                (limit, rows): evaluation
                for (limit, rows, _), evaluation in zip(nonempty, solved)
            }
        else:
            solved_by_key = {
                (limit, rows): _evaluate_rows(
                    self._cos1,
                    self._cos2,
                    self.calendar,
                    self.commitment,
                    self.tolerance,
                    rows,
                    limit,
                )
                for limit, rows, _ in nonempty
            }
        empty = ServerEvaluation(fits=True, required=0.0, utilization=0.0)
        return [
            solved_by_key[key] if key[1] else empty for key in missing
        ]

    def _kernel_fingerprint(self) -> Optional[str]:
        """The translation-memo key, only computed for the fused kernel."""
        if self.kernel != "fused":
            return None
        return self.content_fingerprint()

    def _count(self, name: str, increment: float = 1) -> None:
        if self.instrumentation is not None:
            self.instrumentation.count(name, increment)

    def _simulator_for(self, indices: list[int]) -> SingleServerSimulator:
        if not indices:
            raise PlacementError("cannot build a simulator for no workloads")
        rows = np.asarray(self._canonical_rows(indices), dtype=int)
        cos1 = self._cos1[rows].sum(axis=0)
        cos2 = self._cos2[rows].sum(axis=0)
        return SingleServerSimulator(cos1, cos2, self.calendar)
