"""Genetic optimizing search over workload assignments (Section VI-B).

The search evolves assignments (one server index per workload) toward a
small number of hot servers:

* **fitness** is the consolidation score — ``+1`` per empty server,
  ``f(U) = U^(2Z)`` per feasible used server, ``-N`` per over-booked
  server;
* **mutation** picks a used server with probability weighted by
  ``1 - f(U)`` — poorly utilised servers are the likeliest to have their
  workloads migrated away, so each mutation step tends to reduce the
  number of servers in use by one;
* **cross-over** mates two parents by taking each workload's server from
  one parent or the other at random.

The search tracks the best *feasible* assignment ever seen and returns
it; when seeded with a feasible initial assignment (the consolidator uses
a greedy first fit) the result can only improve on the seed.

Fan-out: each generation's children are *generated* first (all RNG draws
stay in the driver, in the historical order) and then *evaluated* as a
batch through the engine's executor — only server-content subsets missing
from the evaluator cache are shipped to workers, and their results are
reconciled back into the single driver-side cache, so the memoisation
that makes the search affordable is preserved under any backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.engine import Checkpointer, ExecutionEngine, ExecutorSession
from repro.engine.dispatch import split_chunks
from repro.exceptions import PlacementError
from repro.placement.evaluation import (
    GroupItem,
    PlacementEvaluator,
    ServerEvaluation,
    evaluate_groups_worker,
)
from repro.placement.objective import server_score
from repro.resources.pool import ResourcePool
from repro.util.rng import derive_rng

Assignment = tuple[int, ...]


@dataclass(frozen=True)
class GeneticSearchConfig:
    """Tuning knobs for the genetic search."""

    population_size: int = 24
    max_generations: int = 80
    stall_generations: int = 12
    elite_count: int = 2
    crossover_probability: float = 0.6
    mutation_probability: float = 0.8
    seed: Optional[int] = None
    #: Ship each child's parent-evaluation capacities to the batch
    #: solver as verified probe guesses. Sound (every probe is checked
    #: by a kernel call before it moves a bracket) but a lucky probe can
    #: finish a search at a capacity that differs from the scalar
    #: bisection's answer by up to the tolerance, so bit-identical
    #: scalar/batch comparisons keep this off.
    warm_start_brackets: bool = False

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise PlacementError(
                f"population_size must be >= 2, got {self.population_size}"
            )
        if self.max_generations < 1:
            raise PlacementError(
                f"max_generations must be >= 1, got {self.max_generations}"
            )
        if self.stall_generations < 1:
            raise PlacementError(
                f"stall_generations must be >= 1, got {self.stall_generations}"
            )
        if not 0 <= self.elite_count < self.population_size:
            raise PlacementError(
                "elite_count must be in [0, population_size)"
            )
        if not 0.0 <= self.crossover_probability <= 1.0:
            raise PlacementError("crossover_probability must be in [0, 1]")
        if not 0.0 <= self.mutation_probability <= 1.0:
            raise PlacementError("mutation_probability must be in [0, 1]")


@dataclass
class EvaluatedAssignment:
    """An assignment plus its score and per-server evaluations."""

    assignment: Assignment
    score: float
    evaluations: dict[int, ServerEvaluation]
    feasible: bool

    def servers_used(self) -> set[int]:
        return set(self.assignment)


@dataclass
class GeneticSearchResult:
    """Outcome of one search run."""

    best: EvaluatedAssignment
    generations_run: int
    evaluations_performed: int
    history: list[float] = field(default_factory=list)


class GeneticPlacementSearch:
    """Evolves workload-to-server assignments for one pool."""

    def __init__(
        self,
        evaluator: PlacementEvaluator,
        pool: ResourcePool,
        config: GeneticSearchConfig | None = None,
        attribute: str = "cpu",
        engine: ExecutionEngine | None = None,
        constraints=None,
    ):
        if len(pool) == 0:
            raise PlacementError("the pool must contain at least one server")
        self.evaluator = evaluator
        self.pool = pool
        self.servers = list(pool.servers)
        self.config = config or GeneticSearchConfig()
        self.attribute = attribute
        self.engine = engine if engine is not None else ExecutionEngine.serial()
        self._evaluations = 0
        # Anti-affinity constraints price co-located pairs into the
        # fitness (soft: feasibility stays purely capacity-based), so
        # the search evolves away from shared failure domains. With no
        # constraints the scoring path is untouched — bit-identical to
        # the unconstrained search.
        self._constraint_index = None
        if constraints is not None and constraints.enabled:
            from repro.placement.affinity import ConstraintIndex

            self._constraint_index = ConstraintIndex(
                constraints, evaluator.names, self.servers
            )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(
        self,
        initial: Assignment | Sequence[int],
        extra_seeds: Sequence[Assignment] = (),
        *,
        checkpointer: Optional[Checkpointer] = None,
        checkpoint_key: str = "genetic",
    ) -> GeneticSearchResult:
        """Search from an initial assignment; returns the best feasible one.

        ``extra_seeds`` adds further starting points to the population
        (e.g. several greedy solutions), guaranteeing the result is at
        least as good as the best seed. Raises :class:`PlacementError`
        when neither a seed nor any evolved assignment is feasible.

        With a ``checkpointer``, every completed generation journals the
        full search state (generation number, RNG state, population and
        incumbent assignments, stall counter, score history) under
        ``checkpoint_key``. A later run with the same inputs resumes
        from the last completed generation and — because evaluation is
        pure and the RNG state is restored bit-exactly — continues to
        the same result a never-interrupted run produces.
        """
        rng = derive_rng(self.config.seed)
        seed_assignment = self._validate_assignment(tuple(initial))
        instrumentation = self.engine.instrumentation
        resume = (
            checkpointer.load(checkpoint_key)
            if checkpointer is not None
            else None
        )
        with self.engine.session(self._worker_payload()) as session:
            if resume is not None:
                population, best_feasible, history, stall, start_generation = (
                    self._restore(resume, rng, session)
                )
                instrumentation.count("placement.ga_resumes")
                instrumentation.event(
                    "placement.ga_resumed", generation=start_generation
                )
            else:
                population = [self.evaluate(seed_assignment)]
                pending: list[Assignment] = []
                for extra in extra_seeds:
                    if (
                        len(population) + len(pending)
                        >= self.config.population_size
                    ):
                        break
                    pending.append(self._validate_assignment(tuple(extra)))
                while (
                    len(population) + len(pending) < self.config.population_size
                ):
                    pending.append(self._mutate(seed_assignment, rng))
                population.extend(self._evaluate_batch(pending, session))

                best_feasible = self._best_feasible(population)
                history = []
                stall = 0
                start_generation = 0
            # Entry-checked loop (not `for ... break`) so a resume from
            # a checkpoint written at the converged generation stops
            # immediately instead of evolving one extra generation.
            generation = start_generation
            while (
                generation < self.config.max_generations
                and stall < self.config.stall_generations
            ):
                generation += 1
                population = self._next_generation(population, rng, session)
                instrumentation.count("placement.ga_generations")
                history.append(max(member.score for member in population))
                candidate = self._best_feasible(population)
                if candidate is not None and (
                    best_feasible is None or candidate.score > best_feasible.score
                ):
                    best_feasible = candidate
                    stall = 0
                else:
                    stall += 1
                if checkpointer is not None:
                    checkpointer.save(
                        checkpoint_key,
                        self._checkpoint_payload(
                            generation, rng, population, best_feasible,
                            stall, history,
                        ),
                    )

        if best_feasible is None:
            raise PlacementError(
                "genetic search found no feasible assignment; the pool "
                "cannot satisfy the CoS commitments for these workloads"
            )
        return GeneticSearchResult(
            best=best_feasible,
            generations_run=generation,
            evaluations_performed=self._evaluations,
            history=history,
        )

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------
    def _checkpoint_payload(
        self,
        generation: int,
        rng: np.random.Generator,
        population: list[EvaluatedAssignment],
        best_feasible: EvaluatedAssignment | None,
        stall: int,
        history: list[float],
    ) -> dict:
        """The JSON-able search state after a completed generation.

        Only *assignments* are persisted, never scores or evaluations —
        those are recomputed on resume by the same pure functions, so a
        corrupted evaluator cache can never be smuggled through a
        checkpoint into a resumed run.
        """
        return {
            "generation": generation,
            "rng_state": rng.bit_generator.state,
            "population": [list(member.assignment) for member in population],
            "best_feasible": (
                list(best_feasible.assignment)
                if best_feasible is not None
                else None
            ),
            "stall": stall,
            "history": list(history),
        }

    def _restore(
        self,
        resume: dict,
        rng: np.random.Generator,
        session: ExecutorSession,
    ) -> tuple[
        list[EvaluatedAssignment],
        EvaluatedAssignment | None,
        list[float],
        int,
        int,
    ]:
        """Rebuild the search state a checkpoint describes.

        The population is re-evaluated in its persisted order (batch
        evaluation preserves order, and the generation loop's sort is
        stable, so ties break identically to the original run) and the
        RNG is restored bit-exactly, making the continuation
        indistinguishable from one that never stopped.

        Every restored assignment passes through
        :meth:`_validate_assignment` (inside the evaluation calls), so
        a checkpoint written against a different workload ensemble or
        pool shape fails loudly here instead of seeding the search with
        out-of-range state.
        """
        try:
            population = self._evaluate_batch(
                [tuple(member) for member in resume["population"]], session
            )
            best_feasible = (
                self.evaluate(tuple(resume["best_feasible"]))
                if resume["best_feasible"] is not None
                else None
            )
            history = [float(score) for score in resume["history"]]
            stall = int(resume["stall"])
            start_generation = int(resume["generation"])
            rng.bit_generator.state = resume["rng_state"]
        except (KeyError, TypeError, ValueError, PlacementError) as error:
            raise PlacementError(
                f"genetic-search checkpoint is not restorable: {error!r}; "
                "it likely belongs to a different planning problem — "
                "delete the checkpoint directory to restart the search"
            ) from error
        return population, best_feasible, history, stall, start_generation

    def evaluate(self, assignment: Assignment) -> EvaluatedAssignment:
        """Score one assignment (cached per server-content subset)."""
        assignment = self._validate_assignment(assignment)
        groups: dict[int, list[int]] = {}
        for workload_index, server_index in enumerate(assignment):
            groups.setdefault(server_index, []).append(workload_index)
        evaluations = self._evaluate_used_servers(groups)
        score = 0.0
        feasible = True
        for server_index, server in enumerate(self.servers):
            indices = groups.get(server_index, [])
            if not indices:
                score += 1.0
                continue
            evaluation = evaluations[server_index]
            self._evaluations += 1
            required = evaluation.required if evaluation.fits else None
            score += server_score(server, len(indices), required, self.attribute)
            feasible = feasible and evaluation.fits
        if self._constraint_index is not None:
            score -= self._constraint_index.penalty(assignment)
        return EvaluatedAssignment(
            assignment=assignment,
            score=score,
            evaluations=evaluations,
            feasible=feasible,
        )

    def _evaluate_used_servers(
        self, groups: dict[int, list[int]]
    ) -> dict[int, ServerEvaluation]:
        """Evaluate every used server's group, as one batch if possible.

        All of an assignment's server groups are independent searches,
        so an evaluator exposing ``evaluate_groups`` solves the cache
        misses in one simultaneous bisection; composite evaluators fall
        back to per-group calls. Results are identical either way.
        """
        used = sorted(server_index for server_index in groups if groups[server_index])
        batch_evaluate = getattr(self.evaluator, "evaluate_groups", None)
        if batch_evaluate is not None:
            evaluations = batch_evaluate(
                [
                    (
                        self.servers[server_index].capacity_of(self.attribute),
                        groups[server_index],
                    )
                    for server_index in used
                ]
            )
        else:
            evaluations = [
                self.evaluator.evaluate_group(
                    groups[server_index],
                    self.servers[server_index],
                    self.attribute,
                )
                for server_index in used
            ]
        return dict(zip(used, evaluations))

    # ------------------------------------------------------------------
    # Batched evaluation through the execution engine
    # ------------------------------------------------------------------
    def _worker_payload(self):
        """The broadcastable evaluator state, when the evaluator has one.

        Composite (multi-attribute) evaluators do not expose a payload;
        batches then evaluate inline in the driver, which keeps the
        search correct (just not parallel) for them.
        """
        payload_factory = getattr(self.evaluator, "worker_payload", None)
        return payload_factory() if payload_factory is not None else None

    def _evaluate_batch(
        self,
        assignments: Sequence[Assignment],
        session: ExecutorSession,
        parents: Sequence[tuple[EvaluatedAssignment, ...]] | None = None,
    ) -> list[EvaluatedAssignment]:
        """Evaluate assignments, fanning uncached subsets out first.

        Workers compute only the (server capacity, workload subset)
        groups missing from the driver cache — the whole generation's
        missing subsets form one batched capacity-search ladder — and
        their results are merged back via
        :meth:`PlacementEvaluator.install` before the ordinary cached
        evaluation path scores each assignment. Results are
        bit-identical to evaluating one by one.

        ``parents`` (aligned with ``assignments``) supplies each child's
        parent evaluations for warm-started brackets when the config
        enables them.
        """
        validated = [self._validate_assignment(tuple(a)) for a in assignments]
        self._prime_cache(validated, session, parents)
        return [self.evaluate(assignment) for assignment in validated]

    def _prime_cache(
        self,
        assignments: Sequence[Assignment],
        session: ExecutorSession,
        parents: Sequence[tuple[EvaluatedAssignment, ...]] | None = None,
    ) -> None:
        if not (
            hasattr(self.evaluator, "cache_key")
            and hasattr(self.evaluator, "install")
            and self._worker_payload() is not None
        ):
            return
        pending: dict[object, GroupItem] = {}
        for position, assignment in enumerate(assignments):
            groups: dict[int, list[int]] = {}
            for workload_index, server_index in enumerate(assignment):
                groups.setdefault(server_index, []).append(workload_index)
            for server_index, indices in groups.items():
                server = self.servers[server_index]
                key = self.evaluator.cache_key(indices, server, self.attribute)
                if self.evaluator.is_cached(key):
                    continue
                limit, rows = (
                    server.capacity_of(self.attribute),
                    tuple(sorted(indices)),
                )
                probe = self._probe_for(parents, position, server_index)
                if key in pending:
                    previous = pending[key][2]
                    if probe is not None and (
                        previous is None or probe > previous
                    ):
                        pending[key] = (limit, rows, probe)
                    continue
                pending[key] = (limit, rows, probe)
        if not pending:
            return
        keys = list(pending)
        items = [pending[key] for key in keys]
        parallelism = max(1, int(getattr(session, "parallelism", 1)))
        chunks = split_chunks(items, min(len(items), parallelism))
        chunk_results = session.map(evaluate_groups_worker, chunks)
        instrumentation = self.engine.instrumentation
        cursor = 0
        for evaluations, stats in chunk_results:
            for evaluation in evaluations:
                self.evaluator.install(keys[cursor], evaluation)
                cursor += 1
            # Record the full BatchSearchStats set uniformly — zero
            # increments included — so every kernel mode surfaces the
            # same counter names in a plan's counter deltas.
            padded = tuple(stats) + (0,) * (6 - len(stats))
            for name, value in zip(
                (
                    "kernel.rows",
                    "kernel.calls",
                    "kernel.bracket_iterations",
                    "kernel.probe_hits",
                    "kernel.fused_rows",
                    "kernel.f32_retries",
                ),
                padded,
            ):
                instrumentation.count(name, value)
        instrumentation.count("placement.group_evaluations", len(pending))

    def _probe_for(
        self,
        parents: Sequence[tuple[EvaluatedAssignment, ...]] | None,
        position: int,
        server_index: int,
    ) -> Optional[float]:
        """A warm-start capacity guess from the child's parents.

        The largest fitting required-capacity any parent measured for
        the same server is a good first probe for the child's subset
        there: crossover children share most of a parent's server
        contents. Required capacity is *not* monotone in the workload
        subset (adding a fully-served workload can lower the binding
        theta ratio's denominator share), so the guess is only ever used
        as a kernel-verified probe, never as an unverified bracket edge.
        """
        if not self.config.warm_start_brackets or parents is None:
            return None
        if position >= len(parents):
            return None
        candidates = [
            parent.evaluations[server_index].required
            for parent in parents[position]
            if server_index in parent.evaluations
            and parent.evaluations[server_index].fits
        ]
        return max(candidates) if candidates else None

    # ------------------------------------------------------------------
    # Evolution operators
    # ------------------------------------------------------------------
    def _next_generation(
        self,
        population: list[EvaluatedAssignment],
        rng: np.random.Generator,
        session: ExecutorSession,
    ) -> list[EvaluatedAssignment]:
        population = sorted(population, key=lambda member: member.score, reverse=True)
        next_population = population[: self.config.elite_count]
        children: list[Assignment] = []
        child_parents: list[tuple[EvaluatedAssignment, ...]] = []
        while len(next_population) + len(children) < self.config.population_size:
            parent_a = self._tournament(population, rng)
            parents: tuple[EvaluatedAssignment, ...] = (parent_a,)
            if rng.random() < self.config.crossover_probability:
                parent_b = self._tournament(population, rng)
                child = self._crossover(
                    parent_a.assignment, parent_b.assignment, rng
                )
                parents = (parent_a, parent_b)
            else:
                child = parent_a.assignment
            if rng.random() < self.config.mutation_probability:
                child = self._mutate(child, rng)
            children.append(child)
            child_parents.append(parents)
        next_population.extend(
            self._evaluate_batch(children, session, child_parents)
        )
        return next_population

    def _tournament(
        self,
        population: list[EvaluatedAssignment],
        rng: np.random.Generator,
        size: int = 3,
    ) -> EvaluatedAssignment:
        contenders = rng.integers(0, len(population), size=size)
        return max(
            (population[int(index)] for index in contenders),
            key=lambda member: member.score,
        )

    def _crossover(
        self, parent_a: Assignment, parent_b: Assignment, rng: np.random.Generator
    ) -> Assignment:
        """Take each workload's server from one parent or the other."""
        take_from_a = rng.random(len(parent_a)) < 0.5
        return tuple(
            parent_a[index] if take_from_a[index] else parent_b[index]
            for index in range(len(parent_a))
        )

    def _mutate(self, assignment: Assignment, rng: np.random.Generator) -> Assignment:
        """Empty a poorly utilised server onto the other used servers.

        The victim server is drawn with probability proportional to
        ``1 - f(U)`` across used servers (the paper's mutation bias); its
        workloads are scattered over the remaining used servers, or a
        random server when none remain.
        """
        used = sorted(set(assignment))
        if not used:
            return assignment
        groups: dict[int, list[int]] = {}
        for workload_index, server_index in enumerate(assignment):
            groups.setdefault(server_index, []).append(workload_index)
        evaluations = self._evaluate_used_servers(groups)
        weights = np.array(
            [
                1.0 - self._utilization_weight(evaluations[server_index], server_index)
                for server_index in used
            ]
        )
        weights = np.clip(weights, 1e-6, None)
        victim = int(rng.choice(used, p=weights / weights.sum()))
        targets = [server_index for server_index in used if server_index != victim]
        if not targets:
            targets = [
                index for index in range(len(self.servers)) if index != victim
            ]
        if not targets:
            return assignment
        mutated = list(assignment)
        for workload_index, server_index in enumerate(assignment):
            if server_index == victim:
                mutated[workload_index] = int(
                    targets[int(rng.integers(0, len(targets)))]
                )
        return tuple(mutated)

    def _utilization_weight(
        self, evaluation: ServerEvaluation, server_index: int
    ) -> float:
        if not evaluation.fits:
            return 0.0
        return float(
            min(1.0, evaluation.utilization)
            ** (2 * self.servers[server_index].cpus)
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _best_feasible(
        self, population: list[EvaluatedAssignment]
    ) -> EvaluatedAssignment | None:
        feasible = [member for member in population if member.feasible]
        if not feasible:
            return None
        return max(feasible, key=lambda member: member.score)

    def _validate_assignment(self, assignment: Assignment) -> Assignment:
        if len(assignment) != self.evaluator.n_workloads:
            raise PlacementError(
                f"assignment covers {len(assignment)} workloads, expected "
                f"{self.evaluator.n_workloads}"
            )
        for server_index in assignment:
            if not 0 <= server_index < len(self.servers):
                raise PlacementError(
                    f"server index {server_index} out of range "
                    f"[0, {len(self.servers)})"
                )
        return tuple(int(server_index) for server_index in assignment)
