"""Hierarchical placement: shard the pool, plan shards, refine across.

The monolithic consolidation exercise searches one assignment space of
``servers ** workloads`` — fine for the paper's 26 applications on 12
servers, hopeless for a production pool hosting thousands of
containers. This module implements the hierarchical tier on top of it:

1. **cluster** workloads by demand-shape similarity
   (:mod:`repro.placement.clustering`);
2. **shard** the server pool into sub-pools sized to each cluster's
   demand mass (:func:`partition_pool`);
3. **place** each shard independently through the existing
   :class:`~repro.placement.consolidation.Consolidator` — shards are
   embarrassingly parallel, so they fan out through the execution
   engine exactly like failure what-ifs, and each completed shard is
   journaled through the checkpoint layer so a killed run resumes the
   finished shards instead of replanning them;
4. **refine** across shards: migrate workloads to the shard where their
   marginal placement cost is lowest, re-plan the affected shards, and
   stop as soon as total cost stops improving (the cluster → tune →
   re-partition → converge loop of the extend-dist tuner).

Determinism: every shard's genetic search runs under a seed derived
from the root search seed and the shard index, refinement evaluates
marginal costs through one driver-side batch-kernel evaluator, and all
tie-breaking is index-ordered — the same inputs always produce the
same sharded plan, on any backend.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Optional, Sequence, Union

import numpy as np

from repro.engine import Checkpointer, ExecutionEngine
from repro.engine.dispatch import split_chunks
from repro.exceptions import PlacementError
from repro.placement.clustering import (
    FEATURE_NAMES,
    ClusteringResult,
    WorkloadFeatures,
    _circular_phase,
    _normalise,
    cluster_workloads,
)
from repro.placement.consolidation import ConsolidationResult, Consolidator
from repro.placement.evaluation import PlacementEvaluator
from repro.placement.genetic import GeneticSearchConfig
from repro.resources.pool import ResourcePool
from repro.resources.server import ServerSpec
from repro.traces.allocation import CoSAllocationPair
from repro.util.rng import SeedSequenceFactory

#: ``shards`` knob values besides an explicit shard count.
SHARDING_MODES = ("auto", "off")


@dataclass(frozen=True)
class ShardingPolicy:
    """The hierarchical tier's knobs.

    ``shards`` is ``"off"`` (single-pool planning, the historical
    path), ``"auto"`` (size the shard count from the ensemble), or an
    explicit shard count. ``cluster_seed`` feeds the clustering
    tie-breaker; ``refine_rounds`` bounds the cross-shard migration
    loop (each round stops early when cost stops improving).
    """

    shards: Union[int, str] = "auto"
    cluster_seed: Optional[int] = None
    refine_rounds: int = 2
    min_servers_per_shard: int = 2
    target_workloads_per_shard: int = 24
    cluster_method: str = "auto"
    max_moves_per_round: Optional[int] = None

    def __post_init__(self) -> None:
        if isinstance(self.shards, str):
            if self.shards not in SHARDING_MODES:
                raise PlacementError(
                    f"shards must be an int, 'auto', or 'off'; "
                    f"got {self.shards!r}"
                )
        elif self.shards < 1:
            raise PlacementError(f"shards must be >= 1, got {self.shards}")
        if self.refine_rounds < 0:
            raise PlacementError(
                f"refine_rounds must be >= 0, got {self.refine_rounds}"
            )
        if self.min_servers_per_shard < 1:
            raise PlacementError(
                "min_servers_per_shard must be >= 1, "
                f"got {self.min_servers_per_shard}"
            )
        if self.target_workloads_per_shard < 1:
            raise PlacementError(
                "target_workloads_per_shard must be >= 1, "
                f"got {self.target_workloads_per_shard}"
            )

    @property
    def enabled(self) -> bool:
        return self.shards != "off"

    def resolved_shards(self, n_workloads: int, n_servers: int) -> int:
        """The shard count to use for one ensemble/pool pairing.

        Every shard needs at least one server and one workload; the
        ``auto`` mode additionally aims for
        ``target_workloads_per_shard`` workloads and at least
        ``min_servers_per_shard`` servers per shard.
        """
        hard_cap = max(1, min(n_workloads, n_servers))
        if isinstance(self.shards, int):
            return min(self.shards, hard_cap)
        if self.shards == "off":
            return 1
        by_workloads = -(-n_workloads // self.target_workloads_per_shard)
        by_servers = max(1, n_servers // self.min_servers_per_shard)
        return max(1, min(by_workloads, by_servers, hard_cap))


def derive_shard_seed(seed: Optional[int], shard_index: int) -> Optional[int]:
    """A deterministic, platform-independent per-shard search seed.

    Distinct shards must not share a random stream (their searches are
    independent problems), yet the derivation must be reproducible so a
    resumed or re-run plan makes identical decisions.
    """
    if seed is None:
        return None
    rng = SeedSequenceFactory(int(seed)).generator("shard", int(shard_index))
    return int(rng.integers(0, 2**32))


def partition_pool(
    pool: ResourcePool,
    masses: Sequence[float],
    *,
    min_servers_per_shard: int = 1,
    floors: Optional[Sequence[int]] = None,
) -> list[tuple[str, ...]]:
    """Split a pool's servers into contiguous sub-pools sized by mass.

    ``masses`` holds one non-negative demand mass per shard (the sum of
    its workloads' peak allocations); each shard receives a base grant
    of ``min_servers_per_shard`` servers — raised to its entry in
    ``floors`` when given (a per-shard capacity floor, e.g. enough
    servers for the cluster's aggregate peak) — and the rest are
    apportioned to the masses by the largest-remainder method (ties to
    the lower shard index, so the split is deterministic). Floors that
    collectively exceed the pool are trimmed largest-first until they
    fit (never below ``min_servers_per_shard``): every shard keeps as
    much of its floor as the pool affords, and plan-time shard merging
    handles any still-starved shard. Servers keep pool order, so
    sub-pools are contiguous slices — stable and readable in reports.
    """
    n_shards = len(masses)
    if n_shards < 1:
        raise PlacementError("need at least one shard to partition for")
    if any(mass < 0 for mass in masses):
        raise PlacementError(f"shard masses must be >= 0, got {list(masses)}")
    n_servers = len(pool)
    if n_shards * min_servers_per_shard > n_servers:
        raise PlacementError(
            f"cannot give {n_shards} shards {min_servers_per_shard} "
            f"server(s) each from a {n_servers}-server pool"
        )
    base = [min_servers_per_shard] * n_shards
    if floors is not None:
        if len(floors) != n_shards:
            raise PlacementError(
                f"got {len(floors)} capacity floors for {n_shards} shards"
            )
        raised = [
            max(min_servers_per_shard, int(floor)) for floor in floors
        ]
        while sum(raised) > n_servers:
            # Trim the tallest floor (ties to the lower index) — keeps
            # as much of every floor as the pool affords.
            tallest = max(
                range(n_shards), key=lambda i: (raised[i], -i)
            )
            if raised[tallest] <= min_servers_per_shard:
                raised = [min_servers_per_shard] * n_shards
                break
            raised[tallest] -= 1
        base = raised
    spare = n_servers - sum(base)
    total = float(sum(masses))
    if total <= 0.0:
        shares = np.full(n_shards, spare / n_shards)
    else:
        shares = np.asarray(masses, dtype=float) / total * spare
    counts = np.floor(shares).astype(int)
    remainders = shares - counts
    # Largest remainder, ties broken by shard index.
    order = sorted(range(n_shards), key=lambda i: (-remainders[i], i))
    for index in order[: spare - int(counts.sum())]:
        counts[index] += 1
    names = pool.names()
    slices: list[tuple[str, ...]] = []
    start = 0
    for index in range(n_shards):
        size = base[index] + int(counts[index])
        slices.append(tuple(names[start : start + size]))
        start += size
    return slices


@dataclass
class ShardedPlacementResult:
    """Outcome of one hierarchical placement run.

    ``consolidation`` is the merged, pool-wide result (the same type
    the monolithic path produces, so everything downstream — failure
    planning, plan hashing, reports — is oblivious to sharding);
    the remaining fields are the tier's diagnostics.
    """

    consolidation: ConsolidationResult
    clustering: ClusteringResult
    shard_workloads: tuple[tuple[str, ...], ...]
    shard_servers: tuple[tuple[str, ...], ...]
    shard_seconds: tuple[float, ...]
    refine_rounds_run: int
    migrations: int
    resumed_shards: int
    #: Workloads migrated by the post-merge anti-affinity repair pass
    #: (0 when no constraints were given or the merged plan was clean).
    affinity_repairs: int = 0

    @property
    def shard_count(self) -> int:
        return len(self.shard_workloads)

    def summary(self) -> dict[str, object]:
        return {
            "shards": self.shard_count,
            "shard_sizes": [len(names) for names in self.shard_workloads],
            "shard_servers": [len(names) for names in self.shard_servers],
            "shard_seconds": [round(s, 4) for s in self.shard_seconds],
            "clustering_method": self.clustering.method,
            "refine_rounds_run": self.refine_rounds_run,
            "migrations": self.migrations,
            "resumed_shards": self.resumed_shards,
            "affinity_repairs": self.affinity_repairs,
        }


@dataclass(frozen=True)
class _ShardPlanPayload:
    """Picklable state broadcast once per shard-planning wave."""

    pairs: tuple[CoSAllocationPair, ...]
    servers: tuple[ServerSpec, ...]
    commitment: object
    config: Optional[GeneticSearchConfig]
    tolerance: float
    attribute: str
    algorithm: str
    kernel: str
    #: Anti-affinity constraints, threaded into each shard's search so
    #: per-shard plans already avoid shared failure domains; the merged
    #: plan gets a final cross-shard repair pass on top.
    constraints: object = None


@dataclass(frozen=True)
class _ShardItem:
    """One shard's planning work unit."""

    index: int
    workload_rows: tuple[int, ...]
    server_rows: tuple[int, ...]
    seed: Optional[int]
    #: Optional warm-start assignment (server name -> workload names):
    #: refinement replans seed the search with the post-move placement
    #: so the result can only improve on it.
    previous: Optional[tuple[tuple[str, tuple[str, ...]], ...]] = None


@dataclass(frozen=True)
class _ShardOutcome:
    """What one shard's planning returned (or why it could not)."""

    index: int
    result: Optional[ConsolidationResult]
    error: Optional[str]
    seconds: float


def _shard_plan_worker(
    payload: _ShardPlanPayload, item: _ShardItem
) -> _ShardOutcome:
    """Executor work unit: consolidate one shard end to end.

    A pure function of the broadcast payload and the item (the inner
    genetic search runs under the item's derived seed), so results are
    identical across serial and parallel backends. An infeasible shard
    is an *outcome*, not an exception — the driver decides whether to
    merge it away or fail the plan.
    """
    start = time.perf_counter()
    pool = ResourcePool(payload.servers[row] for row in item.server_rows)
    pairs = [payload.pairs[row] for row in item.workload_rows]
    config = payload.config
    if config is not None and config.seed != item.seed:
        config = replace(config, seed=item.seed)
    previous = None
    if item.previous is not None:
        previous = ConsolidationResult(
            assignment={server: names for server, names in item.previous},
            required_by_server={},
            sum_required=0.0,
            sum_peak_allocations=0.0,
            score=0.0,
            algorithm="seed",
        )
    consolidator = Consolidator(
        pool,
        payload.commitment,
        config=config,
        tolerance=payload.tolerance,
        attribute=payload.attribute,
        kernel=payload.kernel,
        constraints=payload.constraints,
    )
    try:
        result = consolidator.consolidate(
            pairs, algorithm=payload.algorithm, previous=previous
        )
    except PlacementError as error:
        return _ShardOutcome(
            index=item.index,
            result=None,
            error=str(error),
            seconds=time.perf_counter() - start,
        )
    return _ShardOutcome(
        index=item.index,
        result=result,
        error=None,
        seconds=time.perf_counter() - start,
    )


class HierarchicalPlanner:
    """Runs the cluster → shard → place → refine pipeline for one pool.

    The planner is *staged*: :meth:`cluster`, :meth:`partition`,
    :meth:`place`, and :meth:`refine` are called in order (the
    :class:`~repro.core.framework.ROpus` facade exposes each as a named
    pipeline stage with its own instrumentation); :meth:`plan` is the
    one-call convenience wrapper.
    """

    def __init__(
        self,
        pool: ResourcePool,
        commitment,
        *,
        config: GeneticSearchConfig | None = None,
        tolerance: float = 0.01,
        attribute: str = "cpu",
        engine: ExecutionEngine | None = None,
        kernel: str = "batch",
        policy: ShardingPolicy | None = None,
        constraints=None,
    ):
        if len(pool) == 0:
            raise PlacementError("cannot shard an empty pool")
        self.pool = pool
        self.commitment = commitment
        self.config = config if config is not None else GeneticSearchConfig()
        self.tolerance = tolerance
        self.attribute = attribute
        self.engine = engine if engine is not None else ExecutionEngine.serial()
        self.kernel = kernel
        self.policy = policy or ShardingPolicy()
        self.constraints = constraints
        self._pairs: list[CoSAllocationPair] = []
        self._names: list[str] = []
        self._clustering: ClusteringResult | None = None
        self._membership: list[list[int]] = []
        self._server_rows: list[tuple[int, ...]] = []
        self._results: list[ConsolidationResult] = []
        self._shard_seconds: list[float] = []
        self._resumed = 0
        self._evaluator: PlacementEvaluator | None = None
        #: Where each migrated workload landed (row -> server name), so
        #: the replan warm start places it where its marginal cost was
        #: actually evaluated.
        self._move_targets: dict[int, str] = {}

    # ------------------------------------------------------------------
    # Stage 1: cluster
    # ------------------------------------------------------------------
    def cluster(
        self,
        pairs: Sequence[CoSAllocationPair],
        features: WorkloadFeatures | None = None,
    ) -> ClusteringResult:
        """Group the translated workloads by demand-shape similarity.

        ``features`` may be precomputed (the framework extracts them
        from the raw demands plus translations); otherwise they are
        derived from the allocation pairs directly.
        """
        if not pairs:
            raise PlacementError("need at least one workload to shard")
        self._pairs = list(pairs)
        self._names = [pair.name for pair in pairs]
        if features is None:
            features = pair_shape_features(pairs)
        n_shards = self.policy.resolved_shards(len(pairs), len(self.pool))
        with self.engine.instrumentation.stage("clustering"):
            self._clustering = cluster_workloads(
                features,
                n_shards,
                seed=self.policy.cluster_seed,
                method=self.policy.cluster_method,
            )
        self.engine.instrumentation.count("placement.clusters", n_shards)
        return self._clustering

    # ------------------------------------------------------------------
    # Stage 2: shard the pool
    # ------------------------------------------------------------------
    def partition(self) -> list[tuple[str, ...]]:
        """Size sub-pools to cluster demand mass and slice the pool.

        Mass is the cluster's aggregate peak (the peak of its summed
        allocation series): what the cluster needs with perfect
        statistical multiplexing, which tracks its share of required
        capacity far better than the sum of individual peaks once
        clustering has grouped correlated workloads together.
        """
        clustering = self._require(self._clustering, "cluster")
        with self.engine.instrumentation.stage("sharding"):
            self._membership = self._rebalance(
                [list(rows) for rows in clustering.members()]
            )
            # Mass is the cluster's *aggregate* peak — the peak of its
            # summed allocation series. Unlike the sum of individual
            # peaks it reflects multiplexing: a shard of correlated
            # workloads (which clustering by shape produces on purpose)
            # peaks together and earns proportionally more servers than
            # an anti-correlated one of equal nominal size.
            masses = [
                self._aggregate_peak(rows) for rows in self._membership
            ]
            # Capacity floor: a shard must at least hold its cluster's
            # aggregate (perfectly-multiplexed) peak — proportional
            # mass shares can starve a shard whose workloads share
            # poorly, and plan-time merging is costlier than sizing
            # honestly up front.
            mean_capacity = float(
                np.mean(
                    [
                        server.capacity_of(self.attribute)
                        for server in self.pool.servers
                    ]
                )
            )
            # One extra server of fragmentation slack per shard: the
            # aggregate peak assumes perfect bin-packing, which greedy
            # construction never achieves on a near-full sub-pool.
            floors = [
                1 + int(np.ceil(self._aggregate_peak(rows) / mean_capacity))
                if rows
                else 0
                for rows in self._membership
            ]
            min_servers = min(
                self.policy.min_servers_per_shard,
                len(self.pool) // max(1, len(self._membership)),
            )
            slices = partition_pool(
                self.pool,
                masses,
                min_servers_per_shard=max(1, min_servers),
                floors=floors,
            )
        name_to_row = {
            server.name: row for row, server in enumerate(self.pool.servers)
        }
        self._server_rows = [
            tuple(name_to_row[name] for name in shard) for shard in slices
        ]
        if len(self._server_rows) != len(self._membership):
            raise PlacementError(
                "internal error: sub-pool count diverged from shard count"
            )
        self.engine.instrumentation.count(
            "placement.shards", len(self._server_rows)
        )
        return slices

    # ------------------------------------------------------------------
    # Stage 3: place shards in parallel
    # ------------------------------------------------------------------
    def place(
        self,
        checkpointer: Checkpointer | None = None,
        algorithm: str = "genetic",
    ) -> list[ConsolidationResult]:
        """Plan every shard independently through the engine.

        Completed shards are journaled under ``shard/<index>`` as soon
        as they exist (wave-sized batches, like the failure sweep), so
        a killed run resumes the finished shards; each checkpoint's
        membership is verified on load, so a resume whose clustering
        came out differently recomputes instead of trusting a shard
        plan for the wrong workloads.
        """
        self._require(self._server_rows or None, "partition")
        self._algorithm = algorithm
        instrumentation = self.engine.instrumentation
        n_shards = len(self._membership)
        restored: dict[int, tuple[ConsolidationResult, float]] = {}
        pending: list[_ShardItem] = []
        single = n_shards == 1
        with instrumentation.stage("placement"):
            for index in range(n_shards):
                loaded = self._load_shard(checkpointer, index)
                if loaded is not None:
                    restored[index] = loaded
                    continue
                pending.append(self._shard_item(index, single))
            if restored:
                self._resumed = len(restored)
                instrumentation.count(
                    "placement.shard_resumes", len(restored)
                )
                instrumentation.event(
                    "placement.shards_resumed",
                    restored=len(restored),
                    pending=len(pending),
                )
            outcomes: list[_ShardOutcome] = []
            if pending:
                payload = self._payload(algorithm)
                with self.engine.session(payload) as session:
                    wave = max(1, int(getattr(session, "parallelism", 1)))
                    # One wave per parallelism slot: each completed
                    # wave's shards are checkpointed before the next
                    # wave starts, so a kill loses at most one wave.
                    for batch in split_chunks(
                        pending, max(1, -(-len(pending) // wave))
                    ):
                        for outcome in session.map(
                            _shard_plan_worker, list(batch)
                        ):
                            outcomes.append(outcome)
                            self._save_shard(checkpointer, outcome)
            self._results = [None] * n_shards  # type: ignore[list-item]
            self._shard_seconds = [0.0] * n_shards
            for index, (result, seconds) in restored.items():
                self._results[index] = result
                self._shard_seconds[index] = seconds
            infeasible: list[_ShardOutcome] = []
            for outcome in outcomes:
                self._shard_seconds[outcome.index] = outcome.seconds
                if outcome.result is None:
                    infeasible.append(outcome)
                else:
                    self._results[outcome.index] = outcome.result
            if infeasible:
                self._absorb_infeasible(infeasible)
        return list(self._results)

    # ------------------------------------------------------------------
    # Stage 4: cross-shard refinement
    # ------------------------------------------------------------------
    def refine(self) -> ShardedPlacementResult:
        """Iterative cross-shard best-fit migration until cost stalls.

        Each round evaluates, for every workload, the marginal cost of
        moving it to its best-fit server in every other shard (batched
        through the global evaluator's kernel); applies the best
        non-conflicting positive-gain moves; re-plans the affected
        shards (seeded with the post-move placement, so replanning can
        only improve it); and keeps the round only if total required
        capacity actually dropped. Stops on the first non-improving
        round or after ``refine_rounds`` rounds.
        """
        self._require(self._results or None, "place")
        instrumentation = self.engine.instrumentation
        rounds_run = 0
        migrations = 0
        with instrumentation.stage("refinement"):
            for _ in range(self.policy.refine_rounds):
                if len(self._membership) < 2:
                    break
                self._move_targets.clear()
                previous_cost = self._total_cost(self._results)
                moves = self._candidate_moves()
                if not moves:
                    break
                saved_membership = [list(rows) for rows in self._membership]
                saved_results = list(self._results)
                applied = self._apply_moves(moves)
                if not applied:
                    break
                if not self._replan_affected(
                    {shard for _, source, target in applied
                     for shard in (source, target)}
                ):
                    # An affected shard came back infeasible: the move
                    # set was too aggressive — revert and stop.
                    self._membership = saved_membership
                    self._results = saved_results
                    break
                rounds_run += 1
                new_cost = self._total_cost(self._results)
                if new_cost < previous_cost - 1e-9:
                    migrations += len(applied)
                    instrumentation.count(
                        "placement.shard_migrations", len(applied)
                    )
                else:
                    self._membership = saved_membership
                    self._results = saved_results
                    break
            instrumentation.count("placement.refine_rounds", rounds_run)
        return self._build_result(rounds_run, migrations)

    def plan(
        self,
        pairs: Sequence[CoSAllocationPair],
        *,
        features: WorkloadFeatures | None = None,
        checkpointer: Checkpointer | None = None,
        algorithm: str = "genetic",
    ) -> ShardedPlacementResult:
        """All four stages in order (the non-facade entry point)."""
        self.cluster(pairs, features)
        self.partition()
        self.place(checkpointer, algorithm)
        return self.refine()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require(self, value, stage: str):
        if value is None:
            raise PlacementError(
                f"hierarchical pipeline stage {stage!r} has not run yet"
            )
        return value

    def _rebalance(self, membership: list[list[int]]) -> list[list[int]]:
        """Split oversized clusters into target-sized shard chunks.

        Shape clustering groups by similarity, not by size: a pool
        where most workloads look alike yields one mega-cluster whose
        genetic search is nearly as expensive as the monolithic one,
        defeating the hierarchy. Any cluster more than twice the
        policy's per-shard workload target is therefore chunked into
        roughly target-sized shards (members keep cluster order, so
        the split is deterministic), bounded by one shard per server.
        Cross-shard refinement later undoes any split the packing
        disagrees with — drained shards merge away.
        """
        target = self.policy.target_workloads_per_shard
        spare = len(self.pool) - len(membership)
        balanced: list[list[int]] = []
        for rows in membership:
            n_chunks = 1
            if len(rows) > 2 * target and spare > 0:
                n_chunks = min(
                    int(np.ceil(len(rows) / target)), 1 + spare
                )
                spare -= n_chunks - 1
            if n_chunks == 1:
                balanced.append(rows)
                continue
            balanced.extend(
                list(chunk) for chunk in split_chunks(rows, n_chunks)
            )
            self.engine.instrumentation.count(
                "placement.shard_splits", n_chunks - 1
            )
        return balanced

    def _aggregate_peak(self, rows: Sequence[int]) -> float:
        """Peak of the cluster's summed total-allocation series.

        The capacity the cluster would need with *perfect* statistical
        multiplexing — a lower bound on any feasible sub-pool.
        """
        if not rows:
            return 0.0
        total = None
        for row in rows:
            pair = self._pairs[row]
            series = pair.cos1.values + pair.cos2.values
            total = series if total is None else total + series
        return float(total.max())

    def _global_evaluator(self) -> PlacementEvaluator:
        if self._evaluator is None:
            self._evaluator = PlacementEvaluator(
                self._pairs,
                self.commitment,
                tolerance=self.tolerance,
                kernel=self.kernel,
                instrumentation=self.engine.instrumentation,
            )
        return self._evaluator

    def _payload(self, algorithm: str) -> _ShardPlanPayload:
        return _ShardPlanPayload(
            pairs=tuple(self._pairs),
            servers=tuple(self.pool.servers),
            commitment=self.commitment,
            config=self.config,
            tolerance=self.tolerance,
            attribute=self.attribute,
            algorithm=algorithm,
            kernel=self.kernel,
            constraints=self.constraints,
        )

    def _shard_item(
        self,
        index: int,
        single: bool,
        previous: Optional[tuple[tuple[str, tuple[str, ...]], ...]] = None,
    ) -> _ShardItem:
        seed = self.config.seed
        return _ShardItem(
            index=index,
            workload_rows=tuple(self._membership[index]),
            server_rows=self._server_rows[index],
            # A lone shard is the whole problem: keep the root seed so
            # the degenerate single-shard plan matches the monolithic
            # search's trajectory.
            seed=seed if single else derive_shard_seed(seed, index),
            previous=previous,
        )

    def _shard_key(self, index: int) -> str:
        return f"shard/{index}"

    def _load_shard(
        self, checkpointer: Checkpointer | None, index: int
    ) -> tuple[ConsolidationResult, float] | None:
        if checkpointer is None:
            return None
        payload = checkpointer.load(self._shard_key(index))
        if payload is None:
            return None
        expected_workloads = sorted(
            self._names[row] for row in self._membership[index]
        )
        expected_servers = [
            self.pool.servers[row].name for row in self._server_rows[index]
        ]
        try:
            if (
                sorted(payload["workloads"]) != expected_workloads
                or list(payload["servers"]) != expected_servers
            ):
                return None
            return (
                ConsolidationResult.from_payload(payload["result"]),
                float(payload.get("seconds", 0.0)),
            )
        except (KeyError, TypeError, ValueError):
            return None

    def _save_shard(
        self, checkpointer: Checkpointer | None, outcome: _ShardOutcome
    ) -> None:
        if checkpointer is None or outcome.result is None:
            return
        index = outcome.index
        checkpointer.save(
            self._shard_key(index),
            {
                "workloads": sorted(
                    self._names[row] for row in self._membership[index]
                ),
                "servers": [
                    self.pool.servers[row].name
                    for row in self._server_rows[index]
                ],
                "result": outcome.result.to_payload(),
                "seconds": outcome.seconds,
            },
        )

    def _absorb_infeasible(self, infeasible: list[_ShardOutcome]) -> None:
        """Merge shards the sub-pool could not absorb into roomier ones.

        Proportional sizing occasionally starves a shard (a cluster of
        perfectly anti-correlated spikers needs less capacity than its
        peak mass suggests, its neighbour more). Rather than failing
        the plan, each infeasible shard is merged — workloads *and*
        servers — into the feasible shard with the most spare capacity
        and the merged shard replanned; if the merge is still too tight
        it keeps absorbing the next-roomiest shard (in the limit the
        hierarchy collapses back to the monolithic problem, which is
        exactly as feasible as unsharded planning). Only with no donor
        left is the problem declared infeasible.
        """
        instrumentation = self.engine.instrumentation
        pending = [outcome.index for outcome in infeasible]
        error = infeasible[-1].error
        while pending:
            donors = [
                (donor, result)
                for donor, result in enumerate(self._results)
                if result is not None and donor not in pending
            ]
            if not donors:
                raise PlacementError(
                    f"shard(s) {pending} are infeasible and no feasible "
                    f"shard remains to absorb them: {error}"
                )
            headroom = {
                donor: sum(
                    self.pool.servers[row].capacity_of(self.attribute)
                    for row in self._server_rows[donor]
                )
                - result.sum_required
                for donor, result in donors
            }
            target = max(
                headroom, key=lambda donor: (headroom[donor], -donor)
            )
            # Pour every pending shard into the donor at once — one
            # replan covers the whole batch instead of one per shard.
            for index in pending:
                self._membership[target].extend(self._membership[index])
                self._membership[index] = []
                self._server_rows[target] = tuple(
                    sorted(
                        self._server_rows[target] + self._server_rows[index]
                    )
                )
                self._server_rows[index] = ()
                self._results[index] = None  # type: ignore[call-overload]
                instrumentation.count("placement.shard_merges")
            merged = _shard_plan_worker(
                self._payload(self._algorithm),
                self._shard_item(target, single=False),
            )
            self._shard_seconds[target] += merged.seconds
            if merged.result is not None:
                self._results[target] = merged.result
                break
            # The merged shard is infeasible too: mark it pending and
            # absorb the next-roomiest feasible shard into it.
            self._results[target] = None  # type: ignore[call-overload]
            pending = [target]
            error = merged.error
        # Drop emptied shards so refinement iterates real ones only.
        keep = [
            index
            for index in range(len(self._membership))
            if self._membership[index]
        ]
        self._membership = [self._membership[index] for index in keep]
        self._server_rows = [self._server_rows[index] for index in keep]
        self._results = [self._results[index] for index in keep]
        self._shard_seconds = [self._shard_seconds[index] for index in keep]

    def _total_cost(self, results: Sequence[ConsolidationResult]) -> float:
        return float(sum(result.sum_required for result in results))

    def _candidate_moves(self) -> list[tuple[float, int, int, int, str]]:
        """Rank every workload's best cross-shard migration.

        Returns ``(net_gain, row, source_shard, target_shard,
        target_server)`` tuples for every workload whose cheapest
        insertion elsewhere undercuts its removal gain at home. All
        required capacities flow through the global evaluator, so the
        whole round's marginal costs are a handful of batched solves.
        """
        evaluator = self._global_evaluator()
        servers = {server.name: server for server in self.pool.servers}
        groups: dict[str, list[int]] = {}
        shard_of_row: dict[int, int] = {}
        for shard, result in enumerate(self._results):
            for server_name, names in result.assignment.items():
                groups[server_name] = [
                    evaluator.index_of(name) for name in names
                ]
            for row in self._membership[shard]:
                shard_of_row[row] = shard
        required = {
            server_name: result.required_by_server[server_name]
            for result in self._results
            for server_name in result.assignment
        }
        # Per shard: a few insertion candidates. The loaded servers with
        # the most headroom come first — inserting next to existing work
        # is where statistical multiplexing pays — plus the emptiest
        # server overall as the always-feasible fallback.
        insertion_targets: dict[int, list[str]] = {}
        for shard in range(len(self._membership)):
            loaded: list[tuple[float, str]] = []
            emptiest: Optional[tuple[float, str]] = None
            for row in self._server_rows[shard]:
                server = self.pool.servers[row]
                used = required.get(server.name, 0.0)
                headroom = server.capacity_of(self.attribute) - used
                if groups.get(server.name):
                    loaded.append((headroom, server.name))
                if emptiest is None or (headroom, server.name) > emptiest:
                    emptiest = (headroom, server.name)
            candidates = [name for _, name in sorted(loaded, reverse=True)[:3]]
            if emptiest is not None and emptiest[1] not in candidates:
                candidates.append(emptiest[1])
            if candidates:
                insertion_targets[shard] = candidates
        # Batch every removal and insertion evaluation in one pass.
        items: list[tuple[float, list[int]]] = []
        # (kind, row, shard, server) per item.
        labels: list[tuple[str, int, int, str]] = []
        for row, source in sorted(shard_of_row.items()):
            home_server = self._results[source].server_of(self._names[row])
            remaining = [r for r in groups[home_server] if r != row]
            items.append(
                (servers[home_server].capacity_of(self.attribute), remaining)
            )
            labels.append(("removal", row, source, home_server))
            for target in range(len(self._membership)):
                if target == source or target not in insertion_targets:
                    continue
                for target_server in insertion_targets[target]:
                    items.append(
                        (
                            servers[target_server].capacity_of(self.attribute),
                            groups.get(target_server, []) + [row],
                        )
                    )
                    labels.append(("insert", row, target, target_server))
        evaluations = evaluator.evaluate_groups(items)
        removal_gain: dict[int, float] = {}
        best_insert: dict[int, tuple[float, int, str]] = {}
        for (kind, row, shard, server_name), evaluation in zip(
            labels, evaluations
        ):
            if kind == "removal":
                gain = required[server_name] - (
                    evaluation.required if evaluation.fits else 0.0
                )
                removal_gain[row] = gain
            else:
                if not evaluation.fits:
                    continue
                delta = evaluation.required - required.get(server_name, 0.0)
                best = best_insert.get(row)
                if best is None or delta < best[0]:
                    best_insert[row] = (delta, shard, server_name)
        moves = []
        for row, (delta, target, target_server) in sorted(
            best_insert.items()
        ):
            gain = removal_gain.get(row, 0.0) - delta
            if gain > 1e-9:
                moves.append(
                    (gain, row, shard_of_row[row], target, target_server)
                )
        moves.sort(key=lambda move: (-move[0], move[1]))
        return moves

    def _apply_moves(
        self, moves: list[tuple[float, int, int, int, str]]
    ) -> list[tuple[int, int, int]]:
        """Apply the best non-conflicting moves; returns what moved.

        One migration per source/target server per round: after a move
        the marginal costs computed against that server are stale, so
        further moves touching it wait for the next round's re-plan.
        A shard *may* drain to zero workloads — that is the hierarchy's
        merge move (a mis-clustered singleton migrates to wherever its
        marginal cost is lowest and its old sub-pool goes idle).
        """
        cap = self.policy.max_moves_per_round
        if cap is None:
            cap = max(1, len(self._names) // 8)
        touched: set[str] = set()
        applied: list[tuple[int, int, int]] = []
        for gain, row, source, target, target_server in moves:
            if len(applied) >= cap:
                break
            home_server = self._results[source].server_of(self._names[row])
            if home_server in touched or target_server in touched:
                continue
            touched.add(home_server)
            touched.add(target_server)
            self._membership[source].remove(row)
            self._membership[target].append(row)
            self._move_targets[row] = target_server
            applied.append((row, source, target))
        return applied

    def _replan_affected(self, shards: set[int]) -> bool:
        """Re-plan the shards a move touched; ``False`` on infeasibility.

        Replans run through the engine like the initial wave, each
        seeded with its post-move placement so the search starts from
        (and can only improve on) the migrated assignment.
        """
        items = []
        for index in sorted(shards):
            if not self._membership[index]:
                # Refinement drained the shard: its sub-pool is idle and
                # contributes nothing to the merged plan.
                self._results[index] = ConsolidationResult(
                    assignment={},
                    required_by_server={},
                    sum_required=0.0,
                    sum_peak_allocations=0.0,
                    score=0.0,
                    algorithm="empty",
                )
                continue
            previous = self._post_move_assignment(index)
            items.append(
                self._shard_item(index, single=False, previous=previous)
            )
        if not items:
            return True
        payload = self._payload(self._algorithm)
        with self.engine.session(payload) as session:
            outcomes = session.map(_shard_plan_worker, items)
        for outcome in outcomes:
            if outcome.result is None:
                return False
            self._results[outcome.index] = outcome.result
            self._shard_seconds[outcome.index] += outcome.seconds
        return True

    def _post_move_assignment(
        self, index: int
    ) -> Optional[tuple[tuple[str, tuple[str, ...]], ...]]:
        """The shard's previous assignment with migrations applied.

        Workloads that left are dropped; each arrival lands on the
        server its migration targeted (where the move's marginal cost
        was evaluated), falling back to the shard's most-headroom
        server. ``None`` when the previous result cannot express the
        new membership (first planning pass).
        """
        result = self._results[index]
        if result is None:
            return None
        member_names = {self._names[row] for row in self._membership[index]}
        assignment: dict[str, list[str]] = {
            server: [name for name in names if name in member_names]
            for server, names in result.assignment.items()
        }
        placed = {name for names in assignment.values() for name in names}
        arrivals = sorted(member_names - placed)
        if arrivals:
            shard_servers = {
                self.pool.servers[row].name
                for row in self._server_rows[index]
            }
            headroom = {
                self.pool.servers[row].name: (
                    self.pool.servers[row].capacity_of(self.attribute)
                    - result.required_by_server.get(
                        self.pool.servers[row].name, 0.0
                    )
                )
                for row in self._server_rows[index]
            }
            fallback = max(headroom, key=lambda name: (headroom[name], name))
            row_of_name = {
                self._names[row]: row for row in self._membership[index]
            }
            for name in arrivals:
                target = self._move_targets.get(row_of_name[name], fallback)
                if target not in shard_servers:
                    target = fallback
                assignment.setdefault(target, []).append(name)
        return tuple(
            (server, tuple(names))
            for server, names in sorted(assignment.items())
            if names
        )

    def _build_result(
        self, rounds_run: int, migrations: int
    ) -> ShardedPlacementResult:
        merged_assignment: dict[str, tuple[str, ...]] = {}
        merged_required: dict[str, float] = {}
        score = 0.0
        for result in self._results:
            for server, names in result.assignment.items():
                if server in merged_assignment:
                    raise PlacementError(
                        f"server {server!r} appears in two shards"
                    )
                merged_assignment[server] = names
            merged_required.update(result.required_by_server)
            score += result.score
        consolidation = ConsolidationResult(
            assignment=merged_assignment,
            required_by_server=merged_required,
            sum_required=float(sum(merged_required.values())),
            sum_peak_allocations=float(
                self._global_evaluator().peak_allocations().sum()
            ),
            score=score,
            algorithm=f"sharded-{self._algorithm}",
        )
        consolidation, affinity_repairs = self._repair_affinity(consolidation)
        clustering = self._require(self._clustering, "cluster")
        return ShardedPlacementResult(
            consolidation=consolidation,
            clustering=clustering,
            shard_workloads=tuple(
                tuple(sorted(self._names[row] for row in rows))
                for rows in self._membership
            ),
            shard_servers=tuple(
                tuple(self.pool.servers[row].name for row in rows)
                for rows in self._server_rows
            ),
            shard_seconds=tuple(self._shard_seconds),
            refine_rounds_run=rounds_run,
            migrations=migrations,
            resumed_shards=self._resumed,
            affinity_repairs=affinity_repairs,
        )

    def _repair_affinity(
        self, consolidation: ConsolidationResult
    ) -> tuple[ConsolidationResult, int]:
        """Cross-shard anti-affinity repair on the merged plan.

        Each shard plans inside its own server slice, so two members of
        one anti-affinity group placed in *different* shards can still
        land in the *same* rack (shard slices and racks are both
        contiguous runs of the pool). The merged assignment therefore
        gets one global repair pass through the pool-wide evaluator —
        the cross-shard analogue of the monolithic consolidator's
        post-search repair — and the repaired plan is rebuilt with
        freshly evaluated per-server capacities.
        """
        if self.constraints is None or not self.constraints.enabled:
            return consolidation, 0
        from repro.placement.affinity import ConstraintIndex, repair_assignment

        evaluator = self._global_evaluator()
        servers = list(self.pool.servers)
        server_row = {server.name: row for row, server in enumerate(servers)}
        assignment = [-1] * evaluator.n_workloads
        for server_name, names in consolidation.assignment.items():
            for name in names:
                assignment[evaluator.index_of(name)] = server_row[server_name]
        index = ConstraintIndex(self.constraints, evaluator.names, servers)
        instrumentation = self.engine.instrumentation
        violations = index.pair_count(assignment)
        instrumentation.count(
            "placement.affinity_cross_shard_violations", violations
        )
        if not violations:
            instrumentation.count("placement.affinity_cross_shard_repairs", 0)
            return consolidation, 0
        repaired, moves = repair_assignment(
            assignment, evaluator, servers, self.constraints, self.attribute
        )
        instrumentation.count(
            "placement.affinity_cross_shard_repairs", moves
        )
        if moves == 0:
            return consolidation, 0
        rebuilt = Consolidator(
            self.pool,
            self.commitment,
            config=self.config,
            tolerance=self.tolerance,
            attribute=self.attribute,
            engine=self.engine,
            kernel=self.kernel,
        )._build_result(
            evaluator, repaired, consolidation.algorithm, None
        )
        return rebuilt, moves


def pair_shape_features(
    pairs: Sequence[CoSAllocationPair],
) -> WorkloadFeatures:
    """Demand-shape features straight from translated allocation pairs.

    The post-translation analogue of
    :func:`repro.placement.clustering.demand_shape_features`: the shape
    features come from the total (CoS1+CoS2) allocation series and the
    CoS1/CoS2 split is exact rather than estimated.
    """
    if not pairs:
        raise PlacementError("need at least one workload to featurise")
    rows = np.empty((len(pairs), len(FEATURE_NAMES)), dtype=float)
    for row, pair in enumerate(pairs):
        cos1 = pair.cos1.values
        cos2 = pair.cos2.values
        total = cos1 + cos2
        calendar = pair.cos1.calendar
        by_slot = calendar.slot_of_day_view(total).mean(axis=(0, 1))
        phase_sin, phase_cos = _circular_phase(by_slot)
        peak = float(total.max())
        mean = float(total.mean())
        if peak <= 0.0:
            raise PlacementError(
                f"workload {pair.name!r} has a non-positive peak allocation"
            )
        p97, p999 = np.percentile(total, [97.0, 99.9])
        mass = float(total.sum())
        rows[row] = (
            phase_sin,
            phase_cos,
            float(p97) / peak,
            float(p999) / peak,
            peak / mean if mean > 0.0 else 1.0,
            float(cos1.sum()) / mass if mass > 0.0 else 0.5,
        )
    return WorkloadFeatures(
        names=tuple(pair.name for pair in pairs),
        matrix=_normalise(rows),
        raw=rows,
    )


__all__ = [
    "HierarchicalPlanner",
    "SHARDING_MODES",
    "ShardedPlacementResult",
    "ShardingPolicy",
    "derive_shard_seed",
    "pair_shape_features",
    "partition_pool",
]
