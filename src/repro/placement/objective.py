"""The consolidation objective (Section VI-B).

An assignment's score is a sum over the pool's servers:

* ``+1`` for a server that hosts no workloads (freed capacity is the
  whole point of consolidation);
* ``f(U) = U^(2Z)`` for a used server with required capacity
  ``R <= L``, where ``U = R / L`` and ``Z`` is the server's CPU count —
  the square exaggerates high utilizations in a least-squares sense and
  the ``Z`` exponent demands that bigger servers run hotter (motivated by
  the ``1 / (1 - U^Z)`` open-network response-time estimate);
* ``-N`` for an over-booked server (``R > L``), where ``N`` is the
  number of workloads assigned to it — infeasible servers are penalised
  in proportion to how much work would suffer.

Anti-affinity constraints (see :mod:`repro.placement.affinity`) price
each co-located pair of constrained workloads with
:func:`affinity_penalty` — a soft penalty subtracted from the score, so
the search steers clear of shared failure domains without ever calling
a capacity-feasible assignment infeasible.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import PlacementError
from repro.resources.server import ServerSpec


def utilization_value(utilization: float, cpus: int) -> float:
    """``f(U) = U^(2Z)`` for one used, feasible server."""
    if not 0.0 <= utilization <= 1.0:
        raise PlacementError(
            f"utilization must be in [0, 1], got {utilization}"
        )
    if cpus < 1:
        raise PlacementError(f"cpus must be >= 1, got {cpus}")
    return float(utilization ** (2 * cpus))


def server_score(
    server: ServerSpec,
    n_workloads: int,
    required: float | None,
    attribute: str = "cpu",
) -> float:
    """Score one server's contribution to the assignment.

    ``required`` is the server's required capacity from the simulator
    (``None`` or ``inf`` means the workloads do not fit at any capacity
    up to the limit).
    """
    if n_workloads < 0:
        raise PlacementError(f"n_workloads must be >= 0, got {n_workloads}")
    if n_workloads == 0:
        return 1.0
    limit = server.capacity_of(attribute)
    if required is None or required > limit or required != required:
        return -float(n_workloads)
    return utilization_value(min(1.0, required / limit), server.cpus)


def affinity_penalty(pair_count: int, weight: float) -> float:
    """The objective price of ``pair_count`` co-located constrained pairs.

    Linear in the pair count so splitting a three-way co-location into
    a two-way one is still rewarded; ``weight`` should exceed the
    ``+1`` empty-server reward so a violation is never bought with a
    freed server.
    """
    if pair_count < 0:
        raise PlacementError(f"pair_count must be >= 0, got {pair_count}")
    if weight <= 0.0:
        raise PlacementError(f"weight must be > 0, got {weight}")
    return float(weight * pair_count)


def assignment_score(
    servers: Sequence[ServerSpec],
    workload_counts: Sequence[int],
    required_capacities: Sequence[float | None],
    attribute: str = "cpu",
) -> float:
    """Total score of an assignment across the pool."""
    if not len(servers) == len(workload_counts) == len(required_capacities):
        raise PlacementError(
            "servers, workload_counts and required_capacities must align"
        )
    return sum(
        server_score(server, count, required, attribute)
        for server, count, required in zip(
            servers, workload_counts, required_capacities
        )
    )
