"""Demand-shape clustering: the hierarchical placement tier's first stage.

A production pool hosts orders of magnitude more workloads than the
paper's 26-application case study; planning them as one monolithic
search scales quadratically. The hierarchical pipeline therefore groups
workloads by *demand-shape similarity* first, sizes sub-pools to the
clusters (:mod:`repro.placement.sharding`), and plans each shard
independently.

The shape features deliberately mirror what drives consolidation
economics ("Design of QoS-aware Provisioning Systems" motivates sizing
sub-pools by demand-shape class):

* **diurnal phase** — where in the day demand concentrates, encoded as
  the demand-weighted circular mean ``(sin, cos)`` over the slot-of-day
  profile, so midnight wraps correctly and one noisy slot cannot flip
  the feature (a flat profile collapses to the origin);
* **peak percentiles** — the p97/peak and p99.9/peak ratios that
  characterise Figure 6's spikers-vs-smooth spectrum;
* **burstiness** — the peak/mean ratio;
* **CoS1/CoS2 split** — the guaranteed-class share of the translated
  allocation, when translations are available (workloads with a large
  guaranteed share multiplex poorly and should be planned together).

Clustering is deterministic and seeded: features are normalised, a tiny
seeded jitter breaks distance ties reproducibly, and the linkage itself
is either SciPy's average-linkage hierarchy (when SciPy is importable —
it is *not* a hard dependency) or an in-repo greedy agglomerative
merge with index-ordered tie-breaking. Either way, the same seed and
the same traces produce identical clusters across processes and runs
within one environment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import PlacementError
from repro.traces.trace import DemandTrace
from repro.util.rng import derive_rng

#: Clustering backends selectable on :func:`cluster_workloads`.
#:
#: * ``"auto"`` — SciPy average linkage when importable, else the
#:   in-repo greedy agglomerative merge;
#: * ``"agglomerative"`` — always the in-repo implementation;
#: * ``"scipy"`` — require SciPy (raises when unavailable).
METHODS = ("auto", "agglomerative", "scipy")

#: Column order of the feature matrix.
FEATURE_NAMES = (
    "phase_sin",
    "phase_cos",
    "p97_over_peak",
    "p999_over_peak",
    "burstiness",
    "cos1_fraction",
)

#: Scale of the seeded tie-breaking jitter added to the normalised
#: feature matrix: far below any real feature difference (features are
#: z-scored, so O(1)), far above float tie territory.
_JITTER_SCALE = 1e-6


@dataclass(frozen=True)
class WorkloadFeatures:
    """Per-workload demand-shape feature vectors.

    ``matrix`` is the z-score-normalised ``(n_workloads, n_features)``
    array the clusterer consumes; ``raw`` keeps the unnormalised values
    for reporting. Rows align with ``names``.
    """

    names: tuple[str, ...]
    matrix: np.ndarray
    raw: np.ndarray
    feature_names: tuple[str, ...] = FEATURE_NAMES

    def __post_init__(self) -> None:
        if self.matrix.shape != (len(self.names), len(self.feature_names)):
            raise PlacementError(
                f"feature matrix shape {self.matrix.shape} does not match "
                f"{len(self.names)} workloads x "
                f"{len(self.feature_names)} features"
            )


@dataclass(frozen=True)
class ClusteringResult:
    """A deterministic partition of workloads into demand-shape clusters.

    ``labels`` aligns with the feature rows (one label per workload) and
    is canonically renumbered: cluster 0 is the cluster of the first
    workload, cluster 1 the next previously-unseen one, and so on — so
    label values are stable regardless of the backend's internal
    numbering.
    """

    names: tuple[str, ...]
    labels: tuple[int, ...]
    n_clusters: int
    method: str
    seed: Optional[int]

    def members(self) -> list[tuple[int, ...]]:
        """Workload row indices per cluster, ordered by cluster label."""
        groups: list[list[int]] = [[] for _ in range(self.n_clusters)]
        for index, label in enumerate(self.labels):
            groups[label].append(index)
        return [tuple(group) for group in groups]

    def label_by_name(self) -> dict[str, int]:
        return dict(zip(self.names, self.labels))


def demand_shape_features(
    demands: Sequence[DemandTrace],
    translations: Optional[Mapping[str, object]] = None,
) -> WorkloadFeatures:
    """Extract the demand-shape feature matrix for an ensemble.

    ``translations`` optionally maps workload name to its
    :class:`~repro.core.translation.TranslationResult`; when given, the
    CoS1 share of the translated allocation becomes a feature (pass
    ``None`` to cluster on raw demand shape alone — the column is then
    a constant and carries no weight after normalisation).
    """
    if not demands:
        raise PlacementError("need at least one workload to featurise")
    names = tuple(demand.name for demand in demands)
    rows = np.empty((len(demands), len(FEATURE_NAMES)), dtype=float)
    for row, demand in enumerate(demands):
        values = demand.values
        calendar = demand.calendar
        by_slot = calendar.slot_of_day_view(values).mean(axis=(0, 1))
        phase_sin, phase_cos = _circular_phase(by_slot)
        peak = float(values.max())
        mean = float(values.mean())
        if peak <= 0.0:
            raise PlacementError(
                f"workload {demand.name!r} has a non-positive peak demand"
            )
        p97, p999 = np.percentile(values, [97.0, 99.9])
        cos1_fraction = 0.5
        if translations is not None:
            result = translations.get(demand.name)
            if result is not None:
                pair = result.pair
                cos1_mass = float(pair.cos1.values.sum())
                total_mass = cos1_mass + float(pair.cos2.values.sum())
                if total_mass > 0.0:
                    cos1_fraction = cos1_mass / total_mass
        rows[row] = (
            phase_sin,
            phase_cos,
            float(p97) / peak,
            float(p999) / peak,
            peak / mean if mean > 0.0 else 1.0,
            cos1_fraction,
        )
    return WorkloadFeatures(names=names, matrix=_normalise(rows), raw=rows)


def _circular_phase(by_slot: np.ndarray) -> tuple[float, float]:
    """Demand-weighted circular mean of the slot-of-day profile.

    Each slot contributes a unit vector on the day circle weighted by
    its mean demand above the profile's base load; the components of
    the resultant are the phase features. Smooth under noise (unlike
    the argmax slot, which a single spiked observation can teleport
    across the day) and the resultant's length encodes diurnal
    concentration: a flat profile collapses to the origin.
    """
    slots = by_slot.shape[0]
    angles = 2.0 * np.pi * np.arange(slots) / slots
    weights = by_slot - by_slot.min()
    total = float(weights.sum())
    if total <= 0.0:
        return 0.0, 0.0
    return (
        float((weights * np.sin(angles)).sum() / total),
        float((weights * np.cos(angles)).sum() / total),
    )


def _normalise(raw: np.ndarray) -> np.ndarray:
    """Z-score each column; constant columns collapse to zero."""
    centred = raw - raw.mean(axis=0)
    scale = raw.std(axis=0)
    scale[scale <= 1e-12] = 1.0
    return centred / scale


def cluster_workloads(
    features: WorkloadFeatures,
    n_clusters: int,
    *,
    seed: Optional[int] = None,
    method: str = "auto",
) -> ClusteringResult:
    """Partition workloads into ``n_clusters`` demand-shape clusters.

    Deterministic for a fixed ``(features, n_clusters, seed, method)``:
    the seed only feeds the tie-breaking jitter, so it decides which of
    several equally-similar groupings is returned, reproducibly.
    """
    if method not in METHODS:
        raise PlacementError(
            f"unknown clustering method {method!r}; expected one of {METHODS}"
        )
    n_workloads = len(features.names)
    if not 1 <= n_clusters <= n_workloads:
        raise PlacementError(
            f"n_clusters must be in [1, {n_workloads}], got {n_clusters}"
        )
    rng = derive_rng(seed if seed is None else int(seed))
    matrix = features.matrix
    if seed is not None:
        matrix = matrix + rng.normal(0.0, _JITTER_SCALE, size=matrix.shape)
    if n_clusters == n_workloads:
        labels = list(range(n_workloads))
        method_used = "trivial"
    else:
        scipy_linkage = None if method == "agglomerative" else _scipy_linkage()
        if method == "scipy" and scipy_linkage is None:
            raise PlacementError(
                "clustering method 'scipy' requested but scipy is not "
                "importable; use method='agglomerative'"
            )
        if scipy_linkage is not None:
            labels = scipy_linkage(matrix, n_clusters)
            method_used = "scipy"
        else:
            labels = _greedy_agglomerative(matrix, n_clusters)
            method_used = "agglomerative"
    return ClusteringResult(
        names=features.names,
        labels=_canonical_labels(labels),
        n_clusters=n_clusters,
        method=method_used,
        seed=seed,
    )


def _scipy_linkage():
    """SciPy's average-linkage clusterer, or ``None`` when unavailable."""
    try:
        from scipy.cluster.hierarchy import fcluster, linkage
    except ImportError:
        return None

    def _cluster(matrix: np.ndarray, n_clusters: int) -> list[int]:
        merged = linkage(matrix, method="average")
        return [
            int(label) for label in fcluster(merged, n_clusters, "maxclust")
        ]

    return _cluster


def _greedy_agglomerative(matrix: np.ndarray, n_clusters: int) -> list[int]:
    """Average-linkage agglomerative clustering, pure numpy.

    Maintains the full inter-cluster distance matrix and repeatedly
    merges the closest pair (ties broken by lowest index pair, so the
    result is deterministic), updating distances with the
    Lance-Williams average-linkage rule. O(n^2) memory and O(n^3)
    worst-case time — vectorised argmin scans keep it practical to a
    few thousand workloads, which is the regime sharding targets.
    """
    n = matrix.shape[0]
    delta = matrix[:, None, :] - matrix[None, :, :]
    distances = np.sqrt((delta * delta).sum(axis=2))
    np.fill_diagonal(distances, np.inf)
    sizes = np.ones(n)
    active = np.ones(n, dtype=bool)
    # members[i] lists original rows currently merged into cluster i.
    members: list[list[int]] = [[index] for index in range(n)]
    for _ in range(n - n_clusters):
        masked = np.where(
            active[:, None] & active[None, :], distances, np.inf
        )
        # argmin on the flattened matrix scans row-major, so among equal
        # minima the lowest (i, j) pair wins — deterministic ties.
        flat = int(np.argmin(masked))
        i, j = divmod(flat, n)
        if i > j:
            i, j = j, i
        # Lance-Williams average linkage: the distance from the merged
        # cluster to any other is the size-weighted mean of the parts'.
        merged_size = sizes[i] + sizes[j]
        distances[i, :] = (
            sizes[i] * distances[i, :] + sizes[j] * distances[j, :]
        ) / merged_size
        distances[:, i] = distances[i, :]
        distances[i, i] = np.inf
        sizes[i] = merged_size
        active[j] = False
        members[i].extend(members[j])
        members[j] = []
    labels = [0] * n
    for label, cluster in enumerate(
        sorted(
            (members[index] for index in range(n) if active[index]),
            key=lambda cluster: cluster[0],
        )
    ):
        for row in cluster:
            labels[row] = label
    return labels


def _canonical_labels(labels: Sequence[int]) -> tuple[int, ...]:
    """Renumber labels by first occurrence (backend-independent values)."""
    mapping: dict[int, int] = {}
    canonical = []
    for label in labels:
        if label not in mapping:
            mapping[label] = len(mapping)
        canonical.append(mapping[label])
    return tuple(canonical)


__all__ = [
    "FEATURE_NAMES",
    "METHODS",
    "ClusteringResult",
    "WorkloadFeatures",
    "cluster_workloads",
    "demand_shape_features",
]
