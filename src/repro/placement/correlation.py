"""Correlation-aware placement seeding (flagged in Section VIII).

The paper's related-work discussion notes that "heuristic search
approaches that also take into account correlations in resource demands
among workloads may also be worth exploring". Two workloads whose peaks
coincide pack badly; anti-correlated workloads (a day-shift web tier and
a nightly batch job) share a server almost for free.

This module provides:

* :func:`allocation_correlation_matrix` — pairwise Pearson correlation
  of total allocation request series;
* :func:`correlation_aware_seed` — a greedy assignment that orders
  workloads by peak and places each on the used server whose current
  occupants it is *least* correlated with (among feasible servers),
  opening a new server only when none fits.

The seed plugs into the genetic search via ``extra_seeds``; the ablation
benchmark measures what the correlation signal buys over plain
first-fit ordering.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InfeasiblePlacementError
from repro.placement.evaluation import PlacementEvaluator
from repro.resources.pool import ResourcePool

Assignment = tuple[int, ...]


def allocation_correlation_matrix(evaluator: PlacementEvaluator) -> np.ndarray:
    """Pairwise Pearson correlations of total allocation series.

    Constant series (zero variance) correlate 0 with everything: they
    neither help nor hurt coincident peaks.
    """
    totals = evaluator._cos1 + evaluator._cos2
    n = totals.shape[0]
    centered = totals - totals.mean(axis=1, keepdims=True)
    norms = np.linalg.norm(centered, axis=1)
    matrix = np.zeros((n, n))
    for row in range(n):
        if norms[row] == 0:
            continue
        for column in range(row + 1, n):
            if norms[column] == 0:
                continue
            value = float(
                centered[row] @ centered[column] / (norms[row] * norms[column])
            )
            matrix[row, column] = value
            matrix[column, row] = value
    np.fill_diagonal(matrix, 1.0)
    return matrix


def correlation_aware_seed(
    evaluator: PlacementEvaluator,
    pool: ResourcePool,
    attribute: str = "cpu",
) -> Assignment:
    """Greedy placement preferring the least-correlated feasible server."""
    servers = list(pool.servers)
    correlation = allocation_correlation_matrix(evaluator)
    order = np.argsort(-evaluator.peak_allocations(), kind="stable")
    groups: dict[int, list[int]] = {}
    assignment = [-1] * evaluator.n_workloads

    for workload_index in (int(index) for index in order):
        best_server = None
        best_score = np.inf
        for server_index in sorted(groups):
            candidate = groups[server_index] + [workload_index]
            evaluation = evaluator.evaluate_group(
                candidate, servers[server_index], attribute
            )
            if not evaluation.fits:
                continue
            occupants = groups[server_index]
            mean_correlation = float(
                np.mean([correlation[workload_index, other] for other in occupants])
            )
            if mean_correlation < best_score:
                best_score = mean_correlation
                best_server = server_index
        if best_server is None:
            best_server = _open_server(
                evaluator, servers, groups, workload_index, attribute
            )
        groups.setdefault(best_server, []).append(workload_index)
        assignment[workload_index] = best_server
    return tuple(assignment)


def _open_server(
    evaluator: PlacementEvaluator,
    servers,
    groups: dict[int, list[int]],
    workload_index: int,
    attribute: str,
) -> int:
    for server_index, server in enumerate(servers):
        if server_index in groups:
            continue
        if evaluator.evaluate_group([workload_index], server, attribute).fits:
            return server_index
    raise InfeasiblePlacementError(
        f"workload {evaluator.names[workload_index]!r} fits on no "
        "remaining server"
    )
