"""Workload placement service (Section VI).

Components:

* :mod:`repro.placement.simulator` — replay aggregate per-CoS allocation
  traces against one server's capacity and measure the resource access
  CoS statistics (theta and the satisfaction deadline);
* :mod:`repro.placement.required_capacity` — binary search for the
  smallest capacity satisfying the commitments;
* :mod:`repro.placement.objective` — the consolidation score;
* :mod:`repro.placement.genetic` — the genetic optimizing search;
* :mod:`repro.placement.greedy` / :mod:`repro.placement.binpack` —
  baseline placement algorithms;
* :mod:`repro.placement.consolidation` — the end-to-end consolidation
  exercise;
* :mod:`repro.placement.failure` — failure what-if planning: single
  servers, correlated domains (rack/zone loss), degraded servers, and
  the spare-sizing search;
* :mod:`repro.placement.affinity` — anti-affinity constraints keeping a
  workload's capacity and failover target in distinct failure domains;
* :mod:`repro.placement.clustering` / :mod:`repro.placement.sharding` —
  the hierarchical tier: demand-shape clustering, pool sharding,
  parallel per-shard planning, and cross-shard refinement.
"""

from repro.placement.clustering import (
    ClusteringResult,
    WorkloadFeatures,
    cluster_workloads,
    demand_shape_features,
)
from repro.placement.consolidation import ConsolidationResult, Consolidator
from repro.placement.correlation import (
    allocation_correlation_matrix,
    correlation_aware_seed,
)
from repro.placement.affinity import (
    AffinityViolation,
    PlacementConstraints,
    find_violations,
    repair_assignment,
)
from repro.placement.failure import (
    MAX_EXHAUSTIVE_CASES,
    FailurePlanner,
    FailureReport,
    FailureSweepPolicy,
    FaultScenario,
    SparePoint,
    SpareSizingCurve,
    parse_scope,
)
from repro.placement.genetic import GeneticPlacementSearch, GeneticSearchConfig
from repro.placement.greedy import best_fit_decreasing, first_fit_decreasing
from repro.placement.multi_attribute import (
    MultiAttributeConsolidator,
    MultiAttributeEvaluator,
)
from repro.placement.objective import assignment_score, server_score
from repro.placement.required_capacity import required_capacity
from repro.placement.sharding import (
    HierarchicalPlanner,
    ShardedPlacementResult,
    ShardingPolicy,
    pair_shape_features,
    partition_pool,
)
from repro.placement.simulator import AccessReport, SingleServerSimulator

__all__ = [
    "AccessReport",
    "AffinityViolation",
    "ClusteringResult",
    "ConsolidationResult",
    "Consolidator",
    "FailurePlanner",
    "FailureReport",
    "FailureSweepPolicy",
    "FaultScenario",
    "MAX_EXHAUSTIVE_CASES",
    "PlacementConstraints",
    "SparePoint",
    "SpareSizingCurve",
    "GeneticPlacementSearch",
    "GeneticSearchConfig",
    "HierarchicalPlanner",
    "MultiAttributeConsolidator",
    "MultiAttributeEvaluator",
    "ShardedPlacementResult",
    "ShardingPolicy",
    "SingleServerSimulator",
    "WorkloadFeatures",
    "allocation_correlation_matrix",
    "cluster_workloads",
    "demand_shape_features",
    "pair_shape_features",
    "partition_pool",
    "assignment_score",
    "best_fit_decreasing",
    "correlation_aware_seed",
    "find_violations",
    "first_fit_decreasing",
    "parse_scope",
    "repair_assignment",
    "required_capacity",
    "server_score",
]
