"""Generation-scale fused capacity kernel (float32 fast + float64 verify).

One GA generation produces dozens to hundreds of cache-missing
``(group, server, attribute)`` capacity searches. The batch kernel
(:func:`~repro.placement.kernels.required_capacity_batch`) already
solves them as one simultaneous bisection, but every bracket halving
still pays a full ``(rows, T)`` float64 pass over the uncompressed
traces — roughly fifteen such passes per solve. This module removes
almost all of them:

* **Total-demand reformulation.** Inside the search bracket the
  candidate capacity ``C`` never drops below the CoS1 peak, so the
  granted CoS1 is the whole CoS1 series and the FIFO backlog recursion
  collapses to ``b_t = max(0, b_{t-1} + total_t - C)`` over the single
  series ``total = cos1 + cos2``. The deadline check becomes
  capacity-independent on one side: a slot is late iff
  ``b_u > V_u + eps`` where ``V_u`` (the CoS2 arrivals over the
  trailing deadline window) is precomputed once per group.
* **Run-length compression.** The backlog at the compression floor
  ``B = max(peak, tolerance, theta threshold)`` is pointwise monotone
  decreasing in ``C``, so every slot with zero floor-backlog stays at
  zero for all candidate capacities ``>= B`` and can neither be late
  nor feed backlog into a later slot. Only the runs of positive
  floor-backlog slots are kept, separated by a synthetic *drain* slot
  of demand ``-(floor backlog at the run's end)`` that provably resets
  the recursion to zero for any ``C >= B`` while keeping magnitudes
  within the data's own range (float32-safe). Raising the floor to the
  exact theta threshold is what makes the compression bite — below it
  every candidate already fails the (cheap, closed-form) theta
  comparison, so the late scan is never consulted there, and at
  capacities above it the backlog drains most of the time by
  construction (at least ``theta`` of the CoS2 demand is served on
  request).
* **float32 fast path, float64 verification.** Brackets (low, high,
  mid) stay float64 on exactly the dyadic grid the batch kernel walks;
  only the per-iteration *decisions* run on the compressed float32
  arrays. After convergence one stacked float64 kernel call over the
  original traces verifies, for every row, that the winning capacity
  satisfies the commitment and the losing bracket edge does not. A
  monotone predicate makes that check retroactively validate every
  decision that influenced the bracket: the low edge only ever rises to
  capacities judged infeasible and the high edge only ever falls to
  capacities judged feasible, so a float32 misjudgement at any step
  leaves a contradiction at one of the two verified endpoints. Rows
  that verify are therefore **bit-identical** to the batch kernel's
  winners; rows that do not are re-solved by
  :func:`~repro.placement.kernels.required_capacity_batch` and counted
  as ``f32_retries``.
* **Memoised translation.** Building a group's compressed
  representation (theta threshold, floor backlog, guard windows) costs
  a few full-trace passes; a :class:`TranslationCache` keyed by the
  evaluator's planning-style content fingerprint plus the workload rows
  reuses it across servers, generations, and failure-sweep cases.

The per-iteration late check is a tiny scan; ``ROPUS_NUMBA=1`` swaps in
an optional numba jit with early exit per row, falling back to the
vectorised numpy scan when numba is not importable. Both
implementations sit below the float64 verification, so they only need
to be *approximately* right — a wrong decision costs a retry, never
correctness.

Fused results carry ``report=None`` (like the batch kernel's peak-screen
rows): the placement layers only consume ``fits`` and
``required_capacity``, and materialising reports would need the exact
FIFO drain the fast path exists to avoid.
"""

from __future__ import annotations

import functools
import os
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.cos import CoSCommitment
from repro.exceptions import SimulationError
from repro.placement.kernels import (
    _EPSILON,
    BatchSearchResult,
    BatchSearchStats,
    BatchSimulator,
    _theta_threshold_rows,
    required_capacity_batch,
)
from repro.placement.required_capacity import (
    DEFAULT_TOLERANCE,
    RequiredCapacityResult,
)
from repro.traces.calendar import TraceCalendar

#: Environment knob enabling the optional numba jit for the late scan.
NUMBA_ENV_VAR = "ROPUS_NUMBA"

#: ``late(totals, guards, capacities) -> bool per row`` over compressed
#: float32 arrays; see :func:`resolve_late_kernel`.
LateKernel = Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]


def numba_requested() -> bool:
    """Whether the environment asks for the numba late-scan jit."""
    return os.environ.get(NUMBA_ENV_VAR, "") == "1"


def _late_rows_numpy(
    totals: np.ndarray, guards: np.ndarray, capacities: np.ndarray
) -> np.ndarray:
    """Vectorised late check over compressed rows (numpy fallback).

    Uses the prefix-minus-running-minimum identity for the clamped
    backlog recursion; drain slots reset the backlog exactly, so the
    prefix never drifts further than the data's own magnitudes.
    """
    if totals.shape[1] == 0:
        return np.zeros(totals.shape[0], dtype=bool)
    deficits = totals - capacities[:, None]
    prefix = np.cumsum(deficits, axis=1, dtype=np.float32)
    floor = np.minimum.accumulate(
        np.minimum(prefix, np.float32(0.0)), axis=1
    )
    backlog = prefix - floor
    return np.any(backlog > guards, axis=1)


def _build_numba_late_kernel() -> Optional[LateKernel]:
    """The jitted per-row early-exit scan, or ``None`` without numba."""
    try:
        from numba import njit
    except ImportError:
        return None

    @njit(cache=False)
    def _scan(
        totals: np.ndarray,
        guards: np.ndarray,
        capacities: np.ndarray,
        out: np.ndarray,
    ) -> None:
        n_rows, width = totals.shape
        for i in range(n_rows):
            backlog = np.float32(0.0)
            cap = capacities[i]
            for t in range(width):
                backlog = backlog + totals[i, t] - cap
                if backlog < np.float32(0.0):
                    backlog = np.float32(0.0)
                elif backlog > guards[i, t]:
                    out[i] = True
                    break

    def kernel(
        totals: np.ndarray, guards: np.ndarray, capacities: np.ndarray
    ) -> np.ndarray:
        out = np.zeros(totals.shape[0], dtype=np.bool_)
        if totals.shape[1]:
            _scan(totals, guards, capacities, out)
        return out

    return kernel


@functools.lru_cache(maxsize=2)
def _resolve(prefer: bool) -> tuple[LateKernel, bool]:
    jitted = _build_numba_late_kernel() if prefer else None
    if jitted is None:
        return (_late_rows_numpy, False)
    return (jitted, True)


def resolve_late_kernel(
    prefer_numba: Optional[bool] = None,
) -> tuple[LateKernel, bool]:
    """Resolve the compressed late-check implementation.

    Returns ``(kernel, used_numba)``. ``prefer_numba=None`` follows the
    :data:`NUMBA_ENV_VAR` knob; an unimportable numba silently falls
    back to the numpy scan (both sit below float64 verification, so the
    choice never affects results). The resolution — including the jit
    compilation — is memoised per preference, so repeated solves reuse
    one compiled kernel per process.
    """
    prefer = numba_requested() if prefer_numba is None else bool(prefer_numba)
    return _resolve(prefer)


@dataclass(frozen=True)
class GroupTranslation:
    """One group's capacity-independent compressed representation.

    ``totals``/``guards`` are the float32 compressed demand series and
    late-check guard windows (``+inf`` marks drain slots and slots that
    can never be late); ``theta_cap`` is the exact float64 minimal
    capacity satisfying the theta constraint and ``low0`` the search
    bracket floor. The compression was computed against the floor
    ``max(low0, theta_cap)`` — the scan is only valid for capacities at
    or above it, which is exactly where the late decision is ever
    consulted (below ``theta_cap`` the theta comparison already fails
    the candidate).
    """

    rows: tuple[int, ...]
    peak: float
    theta_cap: float
    low0: float
    totals: np.ndarray
    guards: np.ndarray
    #: False for a theta-killed stub: the row's capacity limit sits
    #: below ``theta_cap``, so the late decision is never consulted and
    #: the compressed series was not built. Stubs are never cached — a
    #: later call with a higher limit rebuilds the row in full.
    complete: bool = True

    @property
    def width(self) -> int:
        """Compressed slot count (original trace length upper bound)."""
        return int(self.totals.shape[0])


class TranslationCache:
    """Bounded memo of :class:`GroupTranslation` by (fingerprint, rows).

    The fingerprint identifies the translation's full input content
    (demand matrices, commitment, tolerance, calendar — see
    :meth:`~repro.placement.evaluation.PlacementEvaluator.content_fingerprint`),
    so one cache may safely serve many evaluators, e.g. a failure
    sweep's per-QoS-mix evaluators sharing one sweep scratch. Eviction
    is insertion-ordered (FIFO): translations are cheap to rebuild and
    the bound only exists to keep long management-loop runs from
    accumulating stale entries.
    """

    def __init__(self, max_entries: int = 4096):
        if max_entries <= 0:
            raise SimulationError(
                f"max_entries must be > 0, got {max_entries}"
            )
        self._entries: dict[
            tuple[str, tuple[int, ...]], GroupTranslation
        ] = {}
        self.max_entries = int(max_entries)
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(
        self, fingerprint: str, rows: tuple[int, ...]
    ) -> Optional[GroupTranslation]:
        entry = self._entries.get((fingerprint, rows))
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(
        self,
        fingerprint: str,
        rows: tuple[int, ...],
        translation: GroupTranslation,
    ) -> None:
        entries = self._entries
        while len(entries) >= self.max_entries:
            entries.pop(next(iter(entries)))
        entries[(fingerprint, rows)] = translation


def _compress_row(
    total: np.ndarray,
    guard: np.ndarray,
    backlog_floor: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Compress one row to its positive floor-backlog runs plus drains."""
    active = np.nonzero(backlog_floor > 0.0)[0]
    if active.size == 0:
        empty = np.zeros(0, dtype=np.float32)
        return empty, empty
    gaps = np.nonzero(np.diff(active) > 1)[0]
    starts = np.concatenate([active[:1], active[gaps + 1]])
    ends = np.concatenate([active[gaps], active[-1:]])
    lengths = ends - starts + 1
    n_runs = ends.shape[0]
    out_len = int(active.size + n_runs)
    drain_pos = np.cumsum(lengths) + np.arange(n_runs)
    keep = np.ones(out_len, dtype=bool)
    keep[drain_pos] = False
    totals_c = np.empty(out_len, dtype=np.float64)
    totals_c[keep] = total[active]
    totals_c[drain_pos] = -backlog_floor[ends]
    guards_c = np.full(out_len, np.inf, dtype=np.float64)
    guards_c[keep] = guard[active]
    return (
        totals_c.astype(np.float32),
        guards_c.astype(np.float32),
    )


def translate_rows(
    batch: BatchSimulator,
    subsets: Sequence[tuple[int, ...]],
    rows: np.ndarray,
    commitment: CoSCommitment,
    tolerance: float,
    limits: Optional[np.ndarray] = None,
) -> list[GroupTranslation]:
    """Build translations for ``rows`` of ``batch`` (one per subset).

    ``subsets[i]`` names the workload rows behind batch row
    ``rows[i]`` (only used to label the translation for cache keying).
    When per-row capacity ``limits`` are given, rows whose exact theta
    threshold already exceeds their limit come back as incomplete
    stubs: the fused search decides them no-fit on the closed-form
    theta comparison alone (the late scan is masked out below the
    threshold), so their run-length compression would never be read.
    """
    index = np.asarray(rows, dtype=int)
    cos1 = batch._cos1[index]
    cos2 = batch._cos2[index]
    peaks = batch.peaks[index]
    theta_caps = _theta_threshold_rows(
        cos1,
        cos2,
        batch._requested[index],
        batch._positive[index],
        commitment.theta,
        batch.calendar,
    )
    low0 = np.maximum(peaks, tolerance)
    compression_floor = np.maximum(low0, theta_caps)
    length = batch.calendar.n_observations
    deadline = commitment.deadline_slots(batch.calendar)
    late_possible = 0 <= deadline < length
    needed = np.ones(index.shape[0], dtype=bool)
    if limits is not None:
        needed = np.asarray(limits, dtype=float) >= theta_caps
    compress_at = np.full(index.shape[0], -1, dtype=int)
    total = np.zeros((0, 0))
    guard = total
    backlog_floor = total
    if late_possible:
        keep = np.nonzero(needed)[0]
        compress_at[keep] = np.arange(keep.size)
        total = cos1[keep] + cos2[keep]
        prefix = np.cumsum(
            total - compression_floor[keep, None], axis=1
        )
        floor = np.minimum.accumulate(np.minimum(prefix, 0.0), axis=1)
        backlog_floor = prefix - floor
        guard = np.full((keep.size, length), np.inf)
        arrivals = batch._arrivals_cum[index[keep]]
        guard[:, deadline:] = (
            arrivals[:, deadline + 1 :]
            - arrivals[:, 1 : length - deadline + 1]
            + _EPSILON
        )
    translations = []
    empty = np.zeros(0, dtype=np.float32)
    for position in range(index.shape[0]):
        at = int(compress_at[position])
        if late_possible and at >= 0:
            totals_c, guards_c = _compress_row(
                total[at], guard[at], backlog_floor[at]
            )
        else:
            totals_c, guards_c = empty, empty
        translations.append(
            GroupTranslation(
                rows=tuple(subsets[position]),
                peak=float(peaks[position]),
                theta_cap=float(theta_caps[position]),
                low0=float(low0[position]),
                totals=totals_c,
                guards=guards_c,
                complete=bool(needed[position]) or not late_possible,
            )
        )
    return translations


def _translations_for(
    batch: BatchSimulator,
    rows: np.ndarray,
    subsets: Sequence[tuple[int, ...]],
    commitment: CoSCommitment,
    tolerance: float,
    limits: Optional[np.ndarray],
    cache: Optional[TranslationCache],
    fingerprint: Optional[str],
) -> list[GroupTranslation]:
    """Translations for batch rows ``rows``, cache-served where possible.

    ``subsets[i]`` labels ``rows[i]``. Only the requested rows are
    translated — the caller runs its (translation-free) peak screen
    first so rows it already killed never pay the theta walk or the
    run-length compression. Theta-killed stubs (see
    :func:`translate_rows`) are never cached: the same subset may later
    arrive with a higher limit that needs the full compression.
    """
    index = np.asarray(rows, dtype=int)
    if cache is None or fingerprint is None:
        return translate_rows(
            batch,
            [tuple(subset) for subset in subsets],
            index,
            commitment,
            tolerance,
            limits=limits,
        )
    out: list[Optional[GroupTranslation]] = [None] * index.shape[0]
    missing: list[int] = []
    for position in range(index.shape[0]):
        cached = cache.get(fingerprint, tuple(subsets[position]))
        if cached is not None:
            out[position] = cached
        else:
            missing.append(position)
    if missing:
        built = translate_rows(
            batch,
            [tuple(subsets[position]) for position in missing],
            index[missing],
            commitment,
            tolerance,
            limits=None if limits is None else limits[missing],
        )
        for position, translation in zip(missing, built):
            out[position] = translation
            if translation.complete:
                cache.put(fingerprint, translation.rows, translation)
    return out  # type: ignore[return-value]


#: Planned per-row outcomes awaiting float64 verification.
_NO_FIT = 0
_WIN_HIGH_ONLY = 1
_WIN_BRACKET = 2


def fused_required_capacity(
    cos1_matrix: np.ndarray,
    cos2_matrix: np.ndarray,
    subsets: Sequence[tuple[int, ...]],
    calendar: TraceCalendar,
    capacity_limits: np.ndarray,
    commitment: CoSCommitment,
    tolerance: float = DEFAULT_TOLERANCE,
    probes: Optional[np.ndarray] = None,
    *,
    cache: Optional[TranslationCache] = None,
    fingerprint: Optional[str] = None,
    prefer_numba: Optional[bool] = None,
) -> BatchSearchResult:
    """Solve every subset's capacity search on the fused fast path.

    Row ``i`` is bit-identical (in ``fits``/``required_capacity``) to
    ``required_capacity_batch`` in ``bisect`` mode over the same
    subsets, probes included — rows whose float32 trajectory fails the
    float64 endpoint verification are transparently re-solved by that
    very kernel (``stats.f32_retries`` counts them; ``stats.fused_rows``
    counts the rows the fast path settled). Reports are ``None``; see
    the module docstring.
    """
    limits = np.asarray(capacity_limits, dtype=float)
    n = len(subsets)
    if limits.shape != (n,):
        raise SimulationError(
            f"need one capacity limit per subset, got {limits.shape} "
            f"for {n}"
        )
    if limits.size and float(limits.min()) <= 0:
        raise SimulationError(
            f"capacity_limit must be > 0, got {float(limits.min())}"
        )
    if tolerance <= 0:
        raise SimulationError(f"tolerance must be > 0, got {tolerance}")
    batch = BatchSimulator.from_subsets(
        cos1_matrix, cos2_matrix, subsets, calendar
    )
    late_kernel, _ = resolve_late_kernel(prefer_numba)
    deadline = commitment.deadline_slots(calendar)

    kernel_calls = 0
    fused_rows = 0
    f32_retries = 0
    infinity = float("inf")
    results: list[Optional[RequiredCapacityResult]] = [None] * n

    # Peak screen: pure float64 arithmetic, identical to the batch
    # kernel's screen — needs no verification, and runs before any
    # translation so screened-out rows never pay for one.
    peaks = batch.peaks
    candidate = np.nonzero(peaks <= limits + _EPSILON)[0]
    for row in np.nonzero(peaks > limits + _EPSILON)[0]:
        results[row] = RequiredCapacityResult(
            fits=False, required_capacity=infinity, report=None
        )
    if candidate.size == 0:
        return BatchSearchResult(
            results=tuple(results),  # type: ignore[arg-type]
            stats=BatchSearchStats(n, 0, 0, 0, 0, 0),
        )

    m = int(candidate.size)
    cand_translations = _translations_for(
        batch,
        candidate,
        [subsets[int(row)] for row in candidate],
        commitment,
        tolerance,
        limits[candidate],
        cache,
        fingerprint,
    )
    width = max(t.width for t in cand_translations)
    stack_totals = np.zeros((m, width), dtype=np.float32)
    stack_guards = np.full((m, width), np.inf, dtype=np.float32)
    for position, translation in enumerate(cand_translations):
        w = translation.width
        if w:
            stack_totals[position, :w] = translation.totals
            stack_guards[position, :w] = translation.guards
    theta_caps = np.asarray(
        [t.theta_cap for t in cand_translations], dtype=float
    )
    low = np.asarray([t.low0 for t in cand_translations], dtype=float)
    high = limits[candidate].copy()

    def decide(positions: np.ndarray, capacities: np.ndarray) -> np.ndarray:
        """float32 commitment decision for candidate ``positions``.

        Capacities below the theta threshold fail on the (closed-form)
        theta comparison alone; only the survivors run the late scan —
        which also keeps every scan at or above the compression floor,
        where the compressed series is valid.
        """
        ok = capacities >= theta_caps[positions]
        active = np.nonzero(ok)[0]
        if active.size:
            late = late_kernel(
                stack_totals[positions[active]],
                stack_guards[positions[active]],
                capacities[active].astype(np.float32),
            )
            ok[active[late]] = False
        return ok

    # Planned per-row outcomes; verified in one stacked float64 call.
    outcome = np.full(m, _NO_FIT, dtype=np.int64)
    win = np.zeros(m, dtype=float)
    lose = np.zeros(m, dtype=float)
    iterations = np.zeros(m, dtype=np.int64)
    probe_hit = np.zeros(m, dtype=bool)

    everyone = np.arange(m)
    ok_limit = decide(everyone, high)
    pending = everyone[ok_limit]

    # Degenerate brackets: the limit itself is the planned winner.
    open_bracket = low[pending] < high[pending]
    for position in pending[~open_bracket]:
        outcome[position] = _WIN_HIGH_ONLY
        win[position] = float(high[position])
    pending = pending[open_bracket]

    # Bracket-floor probe (the batch kernel's ``at_low`` screen).
    if pending.size:
        ok_low = decide(pending, low[pending])
        for position in pending[ok_low]:
            outcome[position] = _WIN_HIGH_ONLY
            win[position] = float(low[position])
        pending = pending[~ok_low]

    # Warm-start probes, judged on the fast path exactly as the batch
    # kernel judges them (guess and tolerance sibling in one pass).
    if probes is not None and pending.size:
        guesses = np.asarray(probes, dtype=float)[candidate[pending]]
        usable = np.isfinite(guesses)
        usable &= (guesses > low[pending]) & (guesses < high[pending])
        probed = pending[usable]
        if probed.size:
            guess = guesses[usable]
            sibling = np.maximum(guess - tolerance, low[probed])
            stacked_ok = decide(
                np.concatenate([probed, probed]),
                np.concatenate([guess, sibling]),
            )
            half = probed.size
            for offset, position in enumerate(probed):
                if stacked_ok[offset]:
                    high[position] = guess[offset]
                    if stacked_ok[half + offset]:
                        high[position] = sibling[offset]
                    else:
                        low[position] = sibling[offset]
                        probe_hit[position] = True
                else:
                    low[position] = guess[offset]

    # Simultaneous bisection on the float64 dyadic grid, decisions on
    # the compressed float32 stacks.
    while pending.size:
        still_open = high[pending] - low[pending] > tolerance
        for position in pending[~still_open]:
            outcome[position] = _WIN_BRACKET
            win[position] = float(high[position])
            lose[position] = float(low[position])
        pending = pending[still_open]
        if not pending.size:
            break
        mid = (low[pending] + high[pending]) / 2.0
        ok_mid = decide(pending, mid)
        iterations[pending] += 1
        high[pending[ok_mid]] = mid[ok_mid]
        low[pending[~ok_mid]] = mid[~ok_mid]

    # One stacked float64 verification call over the original traces:
    # every planned winner must satisfy the commitment and every losing
    # bracket edge (no-fit limits included) must miss it.
    ver_rows: list[int] = []
    ver_caps: list[float] = []
    expect_true: list[bool] = []
    owner: list[int] = []
    for position in range(m):
        row = int(candidate[position])
        if outcome[position] == _NO_FIT:
            ver_rows.append(row)
            ver_caps.append(float(limits[row]))
            expect_true.append(False)
            owner.append(position)
        else:
            ver_rows.append(row)
            ver_caps.append(float(win[position]))
            expect_true.append(True)
            owner.append(position)
            if outcome[position] == _WIN_BRACKET:
                ver_rows.append(row)
                ver_caps.append(float(lose[position]))
                expect_true.append(False)
                owner.append(position)
    verdict = batch.evaluate_rows(
        np.asarray(ver_rows, dtype=int),
        np.asarray(ver_caps, dtype=float),
        gate=commitment,
        decision_deadline=deadline,
    ).satisfies(commitment, calendar)
    kernel_calls += 1
    confirmed = np.ones(m, dtype=bool)
    for checked, position in enumerate(owner):
        if bool(verdict[checked]) != expect_true[checked]:
            confirmed[position] = False

    bracket_iterations = int(iterations[confirmed].sum())
    probe_hits = int(probe_hit[confirmed].sum())
    for position in np.nonzero(confirmed)[0]:
        row = int(candidate[position])
        fused_rows += 1
        if outcome[position] == _NO_FIT:
            results[row] = RequiredCapacityResult(
                fits=False, required_capacity=infinity, report=None
            )
        else:
            results[row] = RequiredCapacityResult(
                fits=True,
                required_capacity=float(win[position]),
                report=None,
            )

    # Fallback ladder: rows whose trajectory failed verification are
    # re-solved exactly by the batch kernel over the same aggregates.
    retry = np.nonzero(~confirmed)[0]
    if retry.size:
        retry_rows = candidate[retry]
        f32_retries = int(retry.size)
        sub = BatchSimulator(
            batch._cos1[retry_rows], batch._cos2[retry_rows], calendar
        )
        retry_probes = (
            None
            if probes is None
            else np.asarray(probes, dtype=float)[retry_rows]
        )
        solved = required_capacity_batch(
            sub,
            limits[retry_rows],
            commitment,
            tolerance=tolerance,
            probes=retry_probes,
            mode="bisect",
        )
        for row, result in zip(retry_rows, solved.results):
            results[int(row)] = result
        kernel_calls += solved.stats.kernel_calls
        bracket_iterations += solved.stats.bracket_iterations
        probe_hits += solved.stats.probe_hits

    return BatchSearchResult(
        results=tuple(results),  # type: ignore[arg-type]
        stats=BatchSearchStats(
            rows=n,
            kernel_calls=kernel_calls,
            bracket_iterations=bracket_iterations,
            probe_hits=probe_hits,
            fused_rows=fused_rows,
            f32_retries=f32_retries,
        ),
    )
