"""Anti-affinity placement constraints over failure domains.

A failure-aware placement must not let a workload's CoS1 capacity and
its failover target ride the same rack: the single fault the failure
tier plans for would then take out both at once, and the carefully
sized failure-mode plan would start from a hole. The constraint model
here is deliberately small:

* a :class:`PlacementConstraints` carries *anti-affinity groups* —
  sets of workload names that must not share a failure domain (e.g. a
  workload and its failover standby, or the replicas of one service);
* during the genetic search, co-located group pairs are *priced* into
  the objective (see :func:`repro.placement.objective.affinity_penalty`)
  so the search is steered away from violating assignments without
  ever declaring them infeasible — capacity feasibility stays a hard
  constraint, anti-affinity a soft one;
* after any search (and after cross-shard refinement merges shard
  plans, where co-locations can reappear), :func:`repair_assignment`
  deterministically migrates surplus group members to feasible servers
  in unoccupied domains.

Domains come from the pool topology
(:class:`~repro.resources.server.ServerSpec` rack/zone labels); an
unlabeled server is its own singleton domain, so constraints degrade
gracefully on flat pools — every server is a distinct domain and only
same-server co-location is penalised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.exceptions import PlacementError
from repro.placement.objective import affinity_penalty
from repro.resources.pool import DOMAIN_KINDS
from repro.resources.server import ServerSpec


def domain_of(server: ServerSpec, kind: str = "rack") -> str:
    """The server's failure-domain label at one granularity.

    Unlabeled servers fall back to their own name (a singleton domain),
    mirroring :meth:`~repro.resources.pool.ResourcePool.domains`.
    """
    if kind not in DOMAIN_KINDS:
        raise PlacementError(
            f"domain kind must be one of {DOMAIN_KINDS}, got {kind!r}"
        )
    if kind == "server":
        return server.name
    label = getattr(server, kind)
    return label if label is not None else server.name


@dataclass(frozen=True)
class PlacementConstraints:
    """Soft placement constraints for the consolidation search.

    ``anti_affinity`` holds groups of workload names whose members must
    land in pairwise-distinct failure domains of ``domain`` granularity.
    ``penalty_weight`` prices each co-located pair into the objective —
    it should exceed ``1.0`` (the reward for freeing a server) so the
    search never trades a violation for an emptied server.
    """

    anti_affinity: tuple[tuple[str, ...], ...] = ()
    domain: str = "rack"
    penalty_weight: float = 2.0

    def __post_init__(self) -> None:
        groups = tuple(
            tuple(str(name) for name in group)
            for group in self.anti_affinity
        )
        object.__setattr__(self, "anti_affinity", groups)
        if self.domain not in DOMAIN_KINDS:
            raise PlacementError(
                f"constraint domain must be one of {DOMAIN_KINDS}, "
                f"got {self.domain!r}"
            )
        if self.penalty_weight <= 0.0:
            raise PlacementError(
                f"penalty_weight must be > 0, got {self.penalty_weight}"
            )
        for group in groups:
            if len(group) < 2:
                raise PlacementError(
                    f"anti-affinity group {group!r} needs at least two "
                    "workloads"
                )
            if len(set(group)) != len(group):
                raise PlacementError(
                    f"anti-affinity group {group!r} repeats a workload"
                )

    @property
    def enabled(self) -> bool:
        return bool(self.anti_affinity)


@dataclass(frozen=True)
class AffinityViolation:
    """One domain hosting more than one member of one group."""

    group: tuple[str, ...]
    domain: str
    workloads: tuple[str, ...]


def find_violations(
    assignment: Mapping[str, Sequence[str]],
    constraints: PlacementConstraints,
    pool,
) -> tuple[AffinityViolation, ...]:
    """Co-location violations in a named server → workloads assignment."""
    domain_of_workload: dict[str, str] = {}
    for server_name, names in assignment.items():
        label = domain_of(pool[server_name], constraints.domain)
        for name in names:
            domain_of_workload[name] = label
    violations = []
    for group in constraints.anti_affinity:
        by_domain: dict[str, list[str]] = {}
        for name in group:
            label = domain_of_workload.get(name)
            if label is not None:
                by_domain.setdefault(label, []).append(name)
        for label in sorted(by_domain):
            members = by_domain[label]
            if len(members) > 1:
                violations.append(
                    AffinityViolation(
                        group=group,
                        domain=label,
                        workloads=tuple(members),
                    )
                )
    return tuple(violations)


class ConstraintIndex:
    """Constraints compiled against one evaluator's workload order.

    Precomputes workload rows per group and each server index's domain
    label so the genetic search's per-assignment penalty is a couple of
    dictionary passes, not string lookups. Groups referencing unknown
    workloads keep their known members (a constraint spanning ensembles
    — e.g. a shard seeing only part of a group — still binds the part
    it can see); groups with fewer than two known members drop out.
    """

    def __init__(
        self,
        constraints: PlacementConstraints,
        names: Sequence[str],
        servers: Sequence[ServerSpec],
    ):
        self.constraints = constraints
        self.weight = constraints.penalty_weight
        row_of = {name: row for row, name in enumerate(names)}
        self.groups: tuple[tuple[int, ...], ...] = tuple(
            rows
            for group in constraints.anti_affinity
            if len(
                rows := tuple(
                    row_of[name] for name in group if name in row_of
                )
            )
            >= 2
        )
        self.domains: tuple[str, ...] = tuple(
            domain_of(server, constraints.domain) for server in servers
        )

    def pair_count(self, assignment: Sequence[int]) -> int:
        """Co-located pairs across all groups (0 = no violations)."""
        total = 0
        for rows in self.groups:
            counts: dict[str, int] = {}
            for row in rows:
                label = self.domains[assignment[row]]
                counts[label] = counts.get(label, 0) + 1
            total += sum(count * (count - 1) // 2 for count in counts.values())
        return total

    def penalty(self, assignment: Sequence[int]) -> float:
        """The assignment's objective price (0.0 when clean)."""
        pairs = self.pair_count(assignment)
        if pairs == 0:
            return 0.0
        return affinity_penalty(pairs, self.weight)


def repair_assignment(
    assignment: Sequence[int],
    evaluator,
    servers: Sequence[ServerSpec],
    constraints: PlacementConstraints,
    attribute: str = "cpu",
) -> tuple[tuple[int, ...], int]:
    """Migrate surplus group members out of shared domains.

    For every anti-affinity group, the first member (workload order) in
    each over-occupied domain stays put; later members move to the
    first server — pool order, so the repair is deterministic — in a
    domain no group member occupies, provided both the receiving
    server's grown workload set *and* the donor server's shrunk set
    still fit (required capacity is not monotone in the workload
    subset, so the donor is re-checked rather than assumed safe). A
    member with no feasible escape stays where it is; the caller reads
    the remaining :meth:`ConstraintIndex.pair_count` to report
    unrepaired violations.

    Returns the (possibly unchanged) assignment and the number of
    workloads moved.
    """
    index = ConstraintIndex(constraints, evaluator.names, servers)
    current = list(int(server_index) for server_index in assignment)
    moves = 0
    for rows in index.groups:
        by_domain: dict[str, list[int]] = {}
        for row in rows:
            by_domain.setdefault(index.domains[current[row]], []).append(row)
        offenders = [
            row
            for label in by_domain
            for row in by_domain[label][1:]
        ]
        for row in sorted(offenders):
            occupied = {
                index.domains[current[other]]
                for other in rows
                if other != row
            }
            source = current[row]
            donor_group = [
                other
                for other, assigned in enumerate(current)
                if assigned == source and other != row
            ]
            for server_index, server in enumerate(servers):
                if index.domains[server_index] in occupied:
                    continue
                if server_index == source:
                    continue
                target_group = [
                    other
                    for other, assigned in enumerate(current)
                    if assigned == server_index
                ] + [row]
                if not evaluator.evaluate_group(
                    target_group, server, attribute
                ).fits:
                    continue
                if donor_group and not evaluator.evaluate_group(
                    donor_group, servers[source], attribute
                ).fits:
                    break
                current[row] = server_index
                moves += 1
                break
    return tuple(current), moves


__all__ = [
    "AffinityViolation",
    "ConstraintIndex",
    "PlacementConstraints",
    "domain_of",
    "find_violations",
    "repair_assignment",
]
