"""Multi-attribute placement (the paper's Section IX future work).

The paper's evaluation manages CPU only and closes with: "Future work
will look at extending our techniques to consider the impact of greater
sharing of other capacity attributes such as memory and input-output
resources." This module provides that extension:

* each workload brings one per-CoS allocation pair *per capacity
  attribute* (e.g. ``cpu``, ``mem``);
* a workload set fits on a server iff **every** attribute's required
  capacity is within that attribute's limit on the server;
* the placement objective scores the server by its hottest attribute.

:class:`MultiAttributeEvaluator` exposes the same group-evaluation
interface as :class:`~repro.placement.evaluation.PlacementEvaluator`, so
the genetic search and the greedy baselines work unchanged;
:class:`MultiAttributeConsolidator` wires it into the consolidation
exercise.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.cos import CoSCommitment
from repro.exceptions import PlacementError
from repro.placement.consolidation import (
    Algorithm,
    ConsolidationResult,
    Consolidator,
)
from repro.placement.evaluation import PlacementEvaluator, ServerEvaluation
from repro.placement.genetic import GeneticSearchConfig
from repro.resources.pool import ResourcePool
from repro.resources.server import ServerSpec
from repro.traces.allocation import CoSAllocationPair

PRIMARY_ATTRIBUTE = "cpu"


class MultiAttributeEvaluator:
    """Joint feasibility across several capacity attributes.

    Parameters
    ----------
    pairs_by_attribute:
        One sequence of :class:`CoSAllocationPair` per attribute. All
        sequences must cover the same workload names in the same order.
    commitments:
        The pool's CoS2 commitment, either shared across attributes or
        given per attribute.
    """

    def __init__(
        self,
        pairs_by_attribute: Mapping[str, Sequence[CoSAllocationPair]],
        commitments: CoSCommitment | Mapping[str, CoSCommitment],
        tolerance: float = 0.01,
        kernel: str = "batch",
    ):
        if not pairs_by_attribute:
            raise PlacementError("need at least one capacity attribute")
        self.attributes = list(pairs_by_attribute)
        self._evaluators: dict[str, PlacementEvaluator] = {}
        for attribute, pairs in pairs_by_attribute.items():
            commitment = (
                commitments
                if isinstance(commitments, CoSCommitment)
                else commitments[attribute]
            )
            self._evaluators[attribute] = PlacementEvaluator(
                pairs, commitment, tolerance=tolerance, kernel=kernel
            )
        names = self._evaluators[self.attributes[0]].names
        for attribute, evaluator in self._evaluators.items():
            if evaluator.names != names:
                raise PlacementError(
                    f"attribute {attribute!r} covers different workloads "
                    "than the others"
                )
        self.names = names
        self.primary = (
            PRIMARY_ATTRIBUTE
            if PRIMARY_ATTRIBUTE in self._evaluators
            else self.attributes[0]
        )

    @property
    def n_workloads(self) -> int:
        return len(self.names)

    def index_of(self, name: str) -> int:
        return self._evaluators[self.primary].index_of(name)

    def evaluator_for(self, attribute: str) -> PlacementEvaluator:
        try:
            return self._evaluators[attribute]
        except KeyError:
            raise PlacementError(
                f"no allocation data for attribute {attribute!r}"
            ) from None

    def peak_allocations(self) -> np.ndarray:
        """Primary-attribute peaks (used for greedy ordering / C_peak)."""
        return self._evaluators[self.primary].peak_allocations()

    def evaluate_group(
        self,
        indices: Sequence[int],
        server: ServerSpec,
        attribute: str | None = None,
    ) -> ServerEvaluation:
        """Joint evaluation: fits iff every attribute fits.

        The ``attribute`` argument is accepted for interface
        compatibility with :class:`PlacementEvaluator` and ignored — the
        whole point is that all attributes are checked. The reported
        ``required`` is the primary attribute's; ``utilization`` is the
        maximum across attributes (the server is as hot as its hottest
        resource, which is what the objective should see).
        """
        worst_utilization = 0.0
        primary_required = 0.0
        for name in self.attributes:
            if not server.has_attribute(name):
                raise PlacementError(
                    f"server {server.name!r} has no capacity attribute "
                    f"{name!r}"
                )
            evaluation = self._evaluators[name].evaluate_group(
                indices, server, name
            )
            if not evaluation.fits:
                return ServerEvaluation(
                    fits=False,
                    required=float("inf"),
                    utilization=float("inf"),
                )
            worst_utilization = max(worst_utilization, evaluation.utilization)
            if name == self.primary:
                primary_required = evaluation.required
        return ServerEvaluation(
            fits=True,
            required=primary_required,
            utilization=worst_utilization,
        )


class MultiAttributeConsolidator:
    """Consolidation with joint multi-attribute feasibility."""

    def __init__(
        self,
        pool: ResourcePool,
        commitments: CoSCommitment | Mapping[str, CoSCommitment],
        *,
        config: GeneticSearchConfig | None = None,
        tolerance: float = 0.01,
    ):
        self.pool = pool
        self.commitments = commitments
        self.config = config
        self.tolerance = tolerance

    def consolidate(
        self,
        pairs_by_attribute: Mapping[str, Sequence[CoSAllocationPair]],
        algorithm: Algorithm = "genetic",
    ) -> ConsolidationResult:
        evaluator = MultiAttributeEvaluator(
            pairs_by_attribute, self.commitments, tolerance=self.tolerance
        )
        shared_commitment = (
            self.commitments
            if isinstance(self.commitments, CoSCommitment)
            else self.commitments[evaluator.primary]
        )
        delegate = Consolidator(
            self.pool,
            shared_commitment,
            config=self.config,
            tolerance=self.tolerance,
            attribute=evaluator.primary,
        )
        return delegate.consolidate_with_evaluator(evaluator, algorithm)
