"""Single-server replay simulation (Section VI-A).

The simulator considers the assignment of a set of workloads to a single
resource: it replays the aggregate per-CoS allocation traces against the
server's capacity, scheduling CoS1 first and CoS2 from the remainder, and
computes the resource access CoS statistics:

* whether the sum of peak CoS1 allocations fits within capacity (CoS1 is
  a guarantee, not a probability);
* the measured CoS2 resource access probability, per the paper's
  definition — the minimum over weeks and slots-of-day of the ratio of
  satisfied to requested CoS2 allocation, aggregated across the days of
  each week;
* whether CoS2 demand deferred under contention is fully served within
  the deadline ``s`` (checked with a fluid FIFO backlog model).

Everything here is vectorised; the step-wise
:class:`~repro.resources.scheduler.CapacityScheduler` is the per-workload
reference model these aggregates are tested against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.cos import CoSCommitment
from repro.exceptions import SimulationError
from repro.traces.allocation import CoSAllocationPair
from repro.traces.calendar import TraceCalendar

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.placement.kernels import BatchAccessReport

_EPSILON = 1e-9


@dataclass(frozen=True)
class AccessReport:
    """Resource access statistics for one (workloads, capacity) pairing."""

    capacity: float
    cos1_fits: bool
    cos1_peak: float
    theta_measured: float
    max_deferred_slots: int
    cos2_demand_total: float
    cos2_satisfied_on_request: float

    def deadline_ok(
        self, commitment: CoSCommitment, calendar: TraceCalendar
    ) -> bool:
        """True when all deferred CoS2 demand drains within the deadline.

        Deferral within the commitment's deadline ``s`` is allowed by the
        CoS2 contract — only waits *longer* than the deadline violate it.
        """
        return self.max_deferred_slots <= commitment.deadline_slots(calendar)

    def satisfies(self, commitment: CoSCommitment, calendar: TraceCalendar) -> bool:
        """True when this capacity honours the pool's CoS commitments."""
        if not self.cos1_fits:
            return False
        if self.theta_measured < commitment.theta - 1e-12:
            return False
        return self.deadline_ok(commitment, calendar)


class SingleServerSimulator:
    """Replays aggregate allocation traces against one capacity value."""

    def __init__(self, cos1_values: np.ndarray, cos2_values: np.ndarray, calendar: TraceCalendar):
        cos1 = np.asarray(cos1_values, dtype=float)
        cos2 = np.asarray(cos2_values, dtype=float)
        if cos1.shape != (calendar.n_observations,) or cos2.shape != (
            calendar.n_observations,
        ):
            raise SimulationError(
                "aggregate series must match the calendar length"
            )
        self.calendar = calendar
        self._cos1 = cos1
        self._cos2 = cos2
        self._cos1_peak = float(cos1.max()) if cos1.size else 0.0
        self._cos2_arrivals_cum = np.concatenate(([0.0], np.cumsum(cos2)))
        # Capacity-independent precomputation, hoisted so repeated
        # evaluate() calls (dozens per binary search) don't redo it: the
        # theta denominator (requested CoS2 per week and slot-of-day),
        # its positive mask, and the total CoS2 demand.
        self._theta_requested = calendar.slot_of_day_view(cos2).sum(axis=1)
        self._theta_positive = self._theta_requested > 0
        self._cos2_total = float(cos2.sum())

    @classmethod
    def from_pairs(cls, pairs: list[CoSAllocationPair]) -> "SingleServerSimulator":
        """Build the simulator from the workloads assigned to the server."""
        if not pairs:
            raise SimulationError("cannot simulate an empty workload set")
        calendar = pairs[0].calendar
        cos1 = np.zeros(calendar.n_observations)
        cos2 = np.zeros(calendar.n_observations)
        for pair in pairs:
            calendar.require_compatible(pair.calendar)
            cos1 += pair.cos1.values
            cos2 += pair.cos2.values
        return cls(cos1, cos2, calendar)

    @property
    def cos1_peak(self) -> float:
        return self._cos1_peak

    def evaluate(self, capacity: float) -> AccessReport:
        """Measure access statistics at one candidate capacity."""
        if capacity <= 0:
            raise SimulationError(f"capacity must be > 0, got {capacity}")
        cos1_fits = self._cos1_peak <= capacity + _EPSILON
        granted_cos1 = np.minimum(self._cos1, capacity)
        available_cos2 = np.maximum(0.0, capacity - granted_cos1)
        satisfied_now = np.minimum(self._cos2, available_cos2)

        theta = self._measure_theta(satisfied_now)
        max_deferred = self._max_deferred_slots(available_cos2)

        return AccessReport(
            capacity=float(capacity),
            cos1_fits=cos1_fits,
            cos1_peak=self._cos1_peak,
            theta_measured=theta,
            max_deferred_slots=max_deferred,
            cos2_demand_total=self._cos2_total,
            cos2_satisfied_on_request=float(satisfied_now.sum()),
        )

    def evaluate_batch(self, capacities: Sequence[float] | np.ndarray) -> "BatchAccessReport":
        """Measure access statistics at K candidate capacities at once.

        One vectorised ``(K, T)`` pass over the aggregate trace; row
        ``i`` of the result is bit-identical to
        ``self.evaluate(capacities[i])``.
        """
        from repro.placement.kernels import evaluate_capacities

        return evaluate_capacities(self, np.asarray(capacities, dtype=float))

    def _measure_theta(self, satisfied_now: np.ndarray) -> float:
        """The paper's theta: min over weeks and slots of day.

        For week ``w`` and slot ``t``, the ratio is the sum over the
        seven days of satisfied CoS2 allocation divided by the sum of
        requested CoS2 allocation. Slots with no CoS2 request anywhere in
        the week count as fully satisfied. The requested-per-slot
        denominator is capacity-independent and precomputed in
        ``__init__``.
        """
        satisfied = self.calendar.slot_of_day_view(satisfied_now).sum(axis=1)
        ratios = np.ones_like(self._theta_requested)
        positive = self._theta_positive
        ratios[positive] = satisfied[positive] / self._theta_requested[positive]
        return float(ratios.min()) if ratios.size else 1.0

    def _max_deferred_slots(self, available_cos2: np.ndarray) -> int:
        """Longest time any deferred CoS2 demand waited (fluid FIFO model).

        The backlog after slot ``t`` is
        ``b_t = max(0, b_{t-1} + a_t - c_t)`` with arrivals ``a`` and
        service capacity ``c``; a unit arriving in slot ``t`` has been
        served within ``k`` extra slots iff cumulative service through
        ``t + k`` covers cumulative arrivals through ``t``. The returned
        value is the smallest ``k`` that works for every slot (0 when no
        demand is ever deferred).
        """
        deficits = self._cos2 - available_cos2
        prefix = np.cumsum(deficits)
        floor = np.minimum.accumulate(np.minimum(prefix, 0.0))
        backlog = prefix - floor
        if float(backlog.max(initial=0.0)) <= _EPSILON:
            return 0
        arrivals_cum = self._cos2_arrivals_cum[1:]
        served_cum = arrivals_cum - backlog
        # For each arrival slot t find the first slot where cumulative
        # service reaches the arrivals through t; served_cum is
        # non-decreasing so searchsorted applies. Index n means demand
        # arriving at t was never fully served within the trace; count
        # that wait as running to the end of the trace.
        n = arrivals_cum.shape[0]
        first_served = np.searchsorted(
            served_cum, arrivals_cum - _EPSILON, side="left"
        )
        waits = first_served - np.arange(n)
        return int(max(0, waits.max()))
