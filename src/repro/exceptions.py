"""Exception hierarchy for the R-Opus library.

All exceptions raised intentionally by :mod:`repro` derive from
:class:`ROpusError` so callers can catch library failures with a single
``except`` clause while still letting programming errors (``TypeError``,
``KeyError`` from plain bugs) propagate unchanged.
"""

from __future__ import annotations


class ROpusError(Exception):
    """Base class for every error raised by the R-Opus library."""


class TraceError(ROpusError):
    """A demand or allocation trace is malformed or inconsistent."""


class CalendarMismatchError(TraceError):
    """Two traces (or a trace and a calendar) cover incompatible time grids."""


class QoSSpecificationError(ROpusError):
    """An application QoS requirement is self-contradictory or out of range."""


class CommitmentError(ROpusError):
    """A resource-pool class-of-service commitment is invalid."""


class PartitionError(ROpusError):
    """Demand partitioning across classes of service failed."""


class TranslationError(ROpusError):
    """The QoS translation could not map demands onto the pool's CoS."""


class PlacementError(ROpusError):
    """The workload placement service could not produce a valid assignment."""


class InfeasiblePlacementError(PlacementError):
    """No assignment satisfies the resource access QoS commitments."""


class CapacityError(ROpusError):
    """A capacity value is invalid (negative, zero where positive required)."""


class SimulationError(ROpusError):
    """The single-server replay simulation hit an inconsistent state."""


class ConfigurationError(ROpusError):
    """A component was configured with invalid parameters."""


class ResilienceError(ROpusError):
    """Fan-out work kept failing after every retry and degradation step.

    Raised by the resilient executor once bounded retries, pool
    respawns, and the serial fallback have all been exhausted — the
    failure is persistent, not transient, and the caller must decide.
    """


class InvariantError(ROpusError):
    """An internal invariant the library relies on was violated.

    Used where a bare ``assert`` would be wrong: asserts are stripped
    under ``python -O``, so invariants that must hold in production are
    checked with an explicit raise (enforced by the ``no-bare-assert``
    rule of :mod:`repro.analysis`).
    """


class DeterminismViolation(ROpusError):
    """Worker code touched an ambient nondeterminism source at runtime.

    Raised by :mod:`repro.analysis.sanitizer` (armed in pool workers
    under ``ROPUS_SANITIZE=1``) when a work unit reads the wall clock
    or draws from process-ambient RNG state — the dynamic counterpart
    of the static ROP013 rule.
    """
