"""Synthetic enterprise workload generation.

The paper's case study uses four weeks of 5-minute CPU demand traces from
26 proprietary enterprise order-entry applications. Those traces are not
available, so this package generates synthetic equivalents with the same
statistical features the R-Opus analysis depends on:

* diurnal and weekly demand patterns (:mod:`repro.workloads.patterns`),
* autocorrelated burst noise and heavy-tailed spikes
  (:mod:`repro.workloads.noise`),
* a parametric per-application generator
  (:class:`~repro.workloads.generator.WorkloadGenerator`), and
* the curated 26-application case-study ensemble whose top-percentile
  profile mirrors the paper's Figure 6
  (:func:`~repro.workloads.ensemble.case_study_ensemble`).
"""

from repro.workloads.ensemble import (
    CASE_STUDY_APP_COUNT,
    case_study_ensemble,
    scaled_ensemble,
    scaled_specs,
)
from repro.workloads.forecast import (
    GrowthEstimate,
    estimate_weekly_growth,
    extrapolate_demand,
    extrapolate_ensemble,
)
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec
from repro.workloads.noise import ar1_lognormal_noise, inject_spikes
from repro.workloads.patterns import (
    DiurnalPattern,
    batch_window_pattern,
    business_hours_pattern,
    double_peak_pattern,
    flat_pattern,
)

__all__ = [
    "CASE_STUDY_APP_COUNT",
    "DiurnalPattern",
    "GrowthEstimate",
    "WorkloadGenerator",
    "WorkloadSpec",
    "ar1_lognormal_noise",
    "estimate_weekly_growth",
    "extrapolate_demand",
    "extrapolate_ensemble",
    "batch_window_pattern",
    "business_hours_pattern",
    "case_study_ensemble",
    "double_peak_pattern",
    "flat_pattern",
    "inject_spikes",
    "scaled_ensemble",
    "scaled_specs",
]
