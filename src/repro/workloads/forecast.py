"""Demand forecasting for medium- and long-term capacity management.

The paper's trace-based method assumes "future demands will be roughly
similar" to recent history and that organic change is slow (months), so
planning adapts by sliding the analysis window forward (Section II).
Long-term capacity planning (Figure 1) additionally needs a growth
estimate: when will the pool run out?

This module provides both pieces:

* :func:`estimate_weekly_growth` — a least-squares trend over the
  per-week mean demand, reported as a multiplicative weekly growth rate;
* :func:`extrapolate_demand` — project a trace ``k`` weeks ahead by
  repeating its most recent weekly pattern scaled by the compounded
  growth rate, preserving the diurnal/bursty shape the placement
  analysis depends on.

Significant step changes (new business processes) are out of scope, as
in the paper: those must be communicated by the business units.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import TraceError
from repro.traces.trace import DemandTrace


@dataclass(frozen=True)
class GrowthEstimate:
    """A fitted weekly demand trend.

    Attributes
    ----------
    weekly_growth:
        Multiplicative growth per week (1.0 = flat, 1.02 = +2 %/week).
    weekly_means:
        The per-week mean demands the trend was fitted to.
    r_squared:
        Fit quality of the log-linear regression in [0, 1]; low values
        mean the trend is noise and extrapolation should be distrusted.
    """

    weekly_growth: float
    weekly_means: tuple[float, ...]
    r_squared: float


def estimate_weekly_growth(trace: DemandTrace) -> GrowthEstimate:
    """Fit a multiplicative weekly trend to a demand trace.

    Uses ordinary least squares on the log of per-week mean demand.
    Requires at least two weeks of history. A trace with any all-zero
    week yields a flat estimate (growth cannot be inferred from zeros).
    """
    calendar = trace.calendar
    if calendar.weeks < 2:
        raise TraceError(
            "growth estimation needs at least two weeks of history"
        )
    weekly = trace.values.reshape(calendar.weeks, calendar.slots_per_week)
    means = weekly.mean(axis=1)
    if np.any(means <= 0):
        return GrowthEstimate(
            weekly_growth=1.0,
            weekly_means=tuple(float(mean) for mean in means),
            r_squared=0.0,
        )
    log_means = np.log(means)
    weeks = np.arange(calendar.weeks, dtype=float)
    slope, intercept = np.polyfit(weeks, log_means, 1)
    fitted = slope * weeks + intercept
    residual = log_means - fitted
    total_variance = float(((log_means - log_means.mean()) ** 2).sum())
    if total_variance == 0:
        r_squared = 1.0
    else:
        r_squared = 1.0 - float((residual**2).sum()) / total_variance
    return GrowthEstimate(
        weekly_growth=float(np.exp(slope)),
        weekly_means=tuple(float(mean) for mean in means),
        r_squared=max(0.0, min(1.0, r_squared)),
    )


def extrapolate_demand(
    trace: DemandTrace,
    weeks_ahead: int,
    weekly_growth: float | None = None,
) -> DemandTrace:
    """Project a trace ``weeks_ahead`` weeks into the future.

    The projection repeats the trace's most recent week, scaled by the
    compounded weekly growth (estimated from the trace when not given).
    The result covers the same number of weeks as the input — it is the
    *forecast window*, directly usable by the placement service in place
    of the historical window.
    """
    if weeks_ahead < 0:
        raise TraceError(f"weeks_ahead must be >= 0, got {weeks_ahead}")
    if weeks_ahead == 0:
        return trace
    calendar = trace.calendar
    if weekly_growth is None:
        weekly_growth = estimate_weekly_growth(trace).weekly_growth
    if weekly_growth <= 0:
        raise TraceError(f"weekly_growth must be > 0, got {weekly_growth}")

    last_week = trace.values[-calendar.slots_per_week :]
    projected_weeks = []
    for offset in range(calendar.weeks):
        weeks_from_now = weeks_ahead + offset - (calendar.weeks - 1)
        scale = weekly_growth ** max(0, weeks_from_now)
        projected_weeks.append(last_week * scale)
    return DemandTrace(
        trace.name,
        np.concatenate(projected_weeks),
        calendar,
        trace.attribute,
    )


def extrapolate_ensemble(
    traces: list[DemandTrace],
    weeks_ahead: int,
    growth_by_name: dict[str, float] | None = None,
) -> list[DemandTrace]:
    """Project every trace forward; growth fitted per trace by default."""
    projected = []
    for trace in traces:
        growth = None
        if growth_by_name is not None:
            growth = growth_by_name.get(trace.name)
        projected.append(extrapolate_demand(trace, weeks_ahead, growth))
    return projected
