"""Deterministic diurnal and weekly demand shapes.

Interactive enterprise workloads have a strong time-of-day structure (the
paper keys its theta measurement to slots of the day for exactly this
reason). A :class:`DiurnalPattern` produces the deterministic component of
demand: a base daily shape in ``[0, 1]`` modulated by per-day-of-week
weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.traces.calendar import DAYS_PER_WEEK, TraceCalendar

WEEKDAY_WEIGHTS = (1.0, 1.0, 1.0, 1.0, 1.0, 0.35, 0.25)
UNIFORM_WEIGHTS = (1.0,) * DAYS_PER_WEEK


@dataclass(frozen=True)
class DiurnalPattern:
    """A daily demand shape plus day-of-week modulation.

    Parameters
    ----------
    daily_shape:
        Relative demand level per slot of day; values in ``[0, 1]`` with at
        least one slot at 1 (the shape is normalised on construction).
    day_weights:
        Multiplier per day of week, Monday first. Defaults to a typical
        business-application profile with quiet weekends.
    """

    daily_shape: tuple[float, ...]
    day_weights: tuple[float, ...] = WEEKDAY_WEIGHTS

    def __post_init__(self) -> None:
        if len(self.day_weights) != DAYS_PER_WEEK:
            raise ConfigurationError(
                f"day_weights must have {DAYS_PER_WEEK} entries, "
                f"got {len(self.day_weights)}"
            )
        if not self.daily_shape:
            raise ConfigurationError("daily_shape must not be empty")
        if min(self.daily_shape) < 0:
            raise ConfigurationError("daily_shape values must be >= 0")
        if max(self.daily_shape) == 0:
            raise ConfigurationError("daily_shape must have a positive value")
        if min(self.day_weights) < 0:
            raise ConfigurationError("day_weights must be >= 0")
        peak = max(self.daily_shape)
        object.__setattr__(
            self,
            "daily_shape",
            tuple(value / peak for value in self.daily_shape),
        )

    def render(self, calendar: TraceCalendar) -> np.ndarray:
        """Materialise the pattern on a calendar; values in ``[0, 1]``.

        The stored shape is resampled (linear interpolation) to the
        calendar's slots-per-day so one pattern works across slot sizes.
        """
        slots = calendar.slots_per_day
        shape = np.asarray(self.daily_shape)
        if len(shape) != slots:
            source_x = np.linspace(0.0, 1.0, num=len(shape), endpoint=False)
            target_x = np.linspace(0.0, 1.0, num=slots, endpoint=False)
            shape = np.interp(target_x, source_x, shape, period=1.0)
        one_week = np.concatenate(
            [shape * weight for weight in self.day_weights]
        )
        return np.tile(one_week, calendar.weeks)


def _hours_to_slots(curve_hours: Sequence[float], resolution: int = 288) -> np.ndarray:
    """Interpolate a 24-point hourly curve to ``resolution`` slots."""
    hours = np.asarray(curve_hours, dtype=float)
    if hours.shape != (24,):
        raise ConfigurationError(f"hourly curve must have 24 points, got {hours.shape}")
    slot_hours = np.linspace(0.0, 24.0, num=resolution, endpoint=False)
    return np.interp(slot_hours, np.arange(24), hours, period=24.0)


def business_hours_pattern(
    ramp_start: int = 7, peak_start: int = 9, peak_end: int = 17, wind_down: int = 20
) -> DiurnalPattern:
    """A single broad plateau covering the business day.

    Demand ramps from ``ramp_start`` to full load at ``peak_start``, holds
    until ``peak_end``, and decays back to the night floor by
    ``wind_down``.
    """
    if not 0 <= ramp_start < peak_start < peak_end < wind_down <= 24:
        raise ConfigurationError(
            "hours must satisfy 0 <= ramp_start < peak_start < peak_end "
            f"< wind_down <= 24, got {ramp_start, peak_start, peak_end, wind_down}"
        )
    hourly = np.full(24, 0.15)
    for hour in range(24):
        if ramp_start <= hour < peak_start:
            hourly[hour] = 0.15 + 0.85 * (hour - ramp_start) / (peak_start - ramp_start)
        elif peak_start <= hour < peak_end:
            hourly[hour] = 1.0
        elif peak_end <= hour < wind_down:
            hourly[hour] = 1.0 - 0.85 * (hour - peak_end) / (wind_down - peak_end)
    return DiurnalPattern(tuple(_hours_to_slots(hourly)))


def double_peak_pattern(
    morning_peak: int = 10, afternoon_peak: int = 15, trough_depth: float = 0.6
) -> DiurnalPattern:
    """Two peaks with a lunch trough — common for order-entry systems."""
    if not 0 <= morning_peak < afternoon_peak <= 23:
        raise ConfigurationError(
            f"peaks must satisfy 0 <= morning < afternoon <= 23, "
            f"got {morning_peak, afternoon_peak}"
        )
    if not 0.0 <= trough_depth <= 1.0:
        raise ConfigurationError(
            f"trough_depth must be in [0, 1], got {trough_depth}"
        )
    hourly = np.full(24, 0.12)
    hours = np.arange(24, dtype=float)
    morning = np.exp(-0.5 * ((hours - morning_peak) / 1.8) ** 2)
    afternoon = np.exp(-0.5 * ((hours - afternoon_peak) / 2.2) ** 2)
    hourly = np.maximum(hourly, np.maximum(morning, afternoon * (1 - 0.1)))
    trough_hour = (morning_peak + afternoon_peak) / 2.0
    trough = 1.0 - trough_depth * np.exp(-0.5 * ((hours - trough_hour) / 0.9) ** 2)
    hourly = hourly * trough
    return DiurnalPattern(tuple(_hours_to_slots(hourly)))


def batch_window_pattern(window_start: int = 1, window_hours: int = 4) -> DiurnalPattern:
    """Nocturnal batch processing: near-idle except a nightly window."""
    if not 0 <= window_start <= 23:
        raise ConfigurationError(f"window_start must be in [0, 23], got {window_start}")
    if not 1 <= window_hours <= 24:
        raise ConfigurationError(f"window_hours must be in [1, 24], got {window_hours}")
    hourly = np.full(24, 0.05)
    for offset in range(window_hours):
        hourly[(window_start + offset) % 24] = 1.0
    return DiurnalPattern(tuple(_hours_to_slots(hourly)), day_weights=UNIFORM_WEIGHTS)


def flat_pattern(level: float = 1.0) -> DiurnalPattern:
    """Constant demand — infrastructure daemons and always-on services."""
    if level <= 0:
        raise ConfigurationError(f"level must be > 0, got {level}")
    return DiurnalPattern((level,) * 24, day_weights=UNIFORM_WEIGHTS)
