"""The 26-application case-study ensemble.

The paper's case study (Section VII) uses four weeks of 5-minute CPU
demand traces from 26 enterprise order-entry applications. The real traces
are proprietary; :func:`case_study_ensemble` builds a synthetic stand-in
whose *shape* matches the published characterisation (Figure 6):

* two applications whose demand is dominated by a handful of extreme
  spikes (97th-99.9th percentile far below peak);
* roughly the next eight applications with their top 3% of demand between
  2x and 10x the remaining observations;
* the rest progressively smoother, through ordinary bursty interactive
  workloads down to near-constant services.

Aggregate scale is chosen so the Table I consolidation lands in the same
regime as the paper: a sum of per-application peak CPU allocations around
two hundred 1-CPU units, consolidated onto a handful of 16-way servers.
"""

from __future__ import annotations

from dataclasses import replace

from repro.exceptions import ConfigurationError, InvariantError
from repro.util.rng import SeedSequenceFactory
from repro.traces.calendar import TraceCalendar
from repro.traces.trace import DemandTrace
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec
from repro.workloads.patterns import (
    batch_window_pattern,
    business_hours_pattern,
    double_peak_pattern,
    flat_pattern,
)

CASE_STUDY_APP_COUNT = 26


def case_study_specs() -> list[WorkloadSpec]:
    """The 26 workload profiles, ordered spikiest first (as in Figure 6)."""
    specs: list[WorkloadSpec] = []

    # Apps 0-1: extreme spikers. Almost all observations are small; rare
    # spikes 8-15x dominate the peak, so even the 99.9th percentile sits
    # far below 100% of peak.
    for index, (magnitude, rate) in enumerate([(9.0, 4.0), (7.0, 4.5)]):
        specs.append(
            WorkloadSpec(
                name=f"app-{index:02d}",
                pattern=business_hours_pattern(),
                peak_cpus=0.8,
                noise_sigma=0.18,
                spike_rate_per_week=rate,
                spike_magnitude=magnitude,
                spike_duration_slots=6.0,
                spike_magnitude_tail=1.8,
                ceiling_cpus=5.0,
            )
        )

    # Apps 2-9: strong spikers — top 3% of demand 2-10x the rest.
    spiky_params = [
        (4.5, 3.0, 8.0),
        (4.2, 3.5, 7.0),
        (4.0, 4.0, 6.0),
        (3.8, 4.0, 9.0),
        (3.6, 5.0, 5.0),
        (3.4, 5.0, 7.0),
        (3.2, 6.0, 6.0),
        (3.0, 6.0, 8.0),
    ]
    for offset, (magnitude, rate, duration) in enumerate(spiky_params):
        index = 2 + offset
        pattern = (
            double_peak_pattern() if index % 2 == 0 else business_hours_pattern()
        )
        specs.append(
            WorkloadSpec(
                name=f"app-{index:02d}",
                pattern=pattern,
                peak_cpus=0.8 + 0.2 * offset,
                noise_sigma=0.28,
                spike_rate_per_week=rate,
                spike_magnitude=magnitude,
                spike_duration_slots=duration,
                spike_magnitude_tail=2.2,
                ceiling_cpus=6.0,
            )
        )

    # Apps 10-19: ordinary bursty interactive applications — noticeable
    # noise, mild spikes.
    for offset in range(10):
        index = 10 + offset
        pattern_choice = offset % 3
        if pattern_choice == 0:
            pattern = business_hours_pattern(ramp_start=6 + offset % 3)
        elif pattern_choice == 1:
            pattern = double_peak_pattern(
                morning_peak=9 + offset % 2, afternoon_peak=14 + offset % 3
            )
        else:
            pattern = batch_window_pattern(window_start=offset % 6, window_hours=5)
        specs.append(
            WorkloadSpec(
                name=f"app-{index:02d}",
                pattern=pattern,
                peak_cpus=1.2 + 0.3 * offset,
                noise_sigma=0.30,
                noise_correlation=0.8,
                spike_rate_per_week=1.0,
                spike_magnitude=1.6,
                spike_duration_slots=5.0,
                spike_magnitude_tail=3.0,
                ceiling_cpus=6.0,
            )
        )

    # Apps 20-25: smooth, high-percentile workloads — steady services
    # whose 97th percentile is close to peak.
    for offset in range(6):
        index = 20 + offset
        pattern = flat_pattern() if offset % 2 == 0 else business_hours_pattern()
        specs.append(
            WorkloadSpec(
                name=f"app-{index:02d}",
                pattern=pattern,
                peak_cpus=1.5 + 0.4 * offset,
                noise_sigma=0.10,
                noise_correlation=0.9,
                spike_rate_per_week=0.0,
                ceiling_cpus=6.0,
            )
        )

    if len(specs) != CASE_STUDY_APP_COUNT:
        # Not an assert: the Table I reproduction depends on exactly 26
        # applications, and asserts are stripped under ``python -O``.
        raise InvariantError(
            f"case_study_specs built {len(specs)} specs, expected "
            f"{CASE_STUDY_APP_COUNT}"
        )
    return specs


def case_study_ensemble(
    seed: int = 2006, weeks: int = 4, slot_minutes: int = 5
) -> list[DemandTrace]:
    """Generate the 26-application case-study trace ensemble.

    Parameters mirror the paper: four weeks of observations every five
    minutes. The default seed pins the exact ensemble the benchmarks and
    EXPERIMENTS.md report against; pass another seed for robustness
    studies.
    """
    calendar = TraceCalendar(weeks=weeks, slot_minutes=slot_minutes)
    generator = WorkloadGenerator(seed=seed)
    return generator.generate_many(case_study_specs(), calendar)


def scaled_specs(n_apps: int, seed: int = 2006) -> list[WorkloadSpec]:
    """``n_apps`` workload profiles tiled from the 26 case-study ones.

    Replica 0 is the case-study profile set verbatim (so
    ``scaled_specs(26, seed)`` is exactly :func:`case_study_specs`);
    each further replica re-uses the 26 shapes under new names
    (``app-NN-rK``) with a deterministic, seeded perturbation of the
    demand scale — the population stays Figure-6-shaped (spikers
    through smooth services in the published proportions) while every
    application's trace is distinct. Used to study how planning scales
    beyond the paper's ensemble (see ``benchmarks/perf/scaling_bench``).
    """
    if n_apps < 1:
        raise ConfigurationError(f"n_apps must be >= 1, got {n_apps}")
    base = case_study_specs()
    specs: list[WorkloadSpec] = []
    replica = 0
    while len(specs) < n_apps:
        if replica == 0:
            clones = base
        else:
            # One independent perturbation stream per replica: replica
            # K's scales never depend on how many replicas are built.
            rng = SeedSequenceFactory(seed).generator("replica", replica)
            factors = rng.uniform(0.7, 1.3, size=len(base))
            clones = [
                replace(
                    spec,
                    name=f"{spec.name}-r{replica}",
                    peak_cpus=spec.peak_cpus * float(factor),
                )
                for spec, factor in zip(base, factors)
            ]
        specs.extend(clones[: n_apps - len(specs)])
        replica += 1
    return specs


def scaled_ensemble(
    n_apps: int,
    seed: int = 2006,
    weeks: int = 4,
    slot_minutes: int = 5,
) -> list[DemandTrace]:
    """Generate an ``n_apps``-application ensemble shaped like the study.

    Deterministic in ``(n_apps, seed, weeks, slot_minutes)``; with
    ``n_apps=26`` it reproduces :func:`case_study_ensemble` exactly.
    Prefer coarser calendars (fewer weeks, larger slots) for large
    ``n_apps`` — trace memory grows with both dimensions.
    """
    calendar = TraceCalendar(weeks=weeks, slot_minutes=slot_minutes)
    generator = WorkloadGenerator(seed=seed)
    return generator.generate_many(scaled_specs(n_apps, seed), calendar)
