"""Stochastic components of synthetic demand.

Two processes model what the paper's real traces exhibit:

* :func:`ar1_lognormal_noise` — autocorrelated multiplicative noise. Real
  5-minute utilization samples are strongly correlated between adjacent
  intervals; an AR(1) process in log space reproduces that while keeping
  the noise strictly positive.
* :func:`inject_spikes` — rare, heavy-tailed demand spikes with contiguous
  duration. These create exactly the top-percentile outliers visible in
  the paper's Figure 6 and the multi-slot degraded runs that the
  ``T_degr`` time-limited-degradation analysis exists to handle.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.util.rng import RngLike, derive_rng


def ar1_lognormal_noise(
    n: int,
    sigma: float = 0.25,
    correlation: float = 0.85,
    rng: RngLike = None,
) -> np.ndarray:
    """Multiplicative AR(1) noise in log space, mean approximately 1.

    Parameters
    ----------
    n:
        Number of samples.
    sigma:
        Stationary standard deviation of the log-noise. Larger means
        burstier demand.
    correlation:
        AR(1) coefficient in ``[0, 1)``; adjacent 5-minute samples of real
        utilization are highly correlated, so the default is high.

    Returns an array of strictly positive multipliers with
    ``E[multiplier] ~= 1`` (the log process is mean-corrected by
    ``-sigma^2 / 2``).
    """
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n}")
    if sigma < 0:
        raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
    if not 0.0 <= correlation < 1.0:
        raise ConfigurationError(
            f"correlation must be in [0, 1), got {correlation}"
        )
    if n == 0:
        return np.empty(0)
    generator = derive_rng(rng)
    if sigma == 0:
        return np.ones(n)
    innovation_scale = sigma * np.sqrt(1.0 - correlation**2)
    log_values = np.empty(n)
    log_values[0] = generator.normal(0.0, sigma)
    innovations = generator.normal(0.0, innovation_scale, size=n - 1)
    for index in range(1, n):
        log_values[index] = correlation * log_values[index - 1] + innovations[index - 1]
    return np.exp(log_values - 0.5 * sigma**2)


def inject_spikes(
    values: np.ndarray,
    spike_rate_per_week: float,
    magnitude: float,
    duration_slots_mean: float,
    slots_per_week: int,
    rng: RngLike = None,
    magnitude_tail: float = 2.5,
) -> np.ndarray:
    """Overlay rare heavy-tailed demand spikes on a demand series.

    Each spike multiplies a contiguous window of observations. Spike
    arrivals are Poisson with ``spike_rate_per_week``; durations are
    geometric with mean ``duration_slots_mean`` (at least one slot);
    magnitudes are Pareto-distributed with scale ``magnitude`` and tail
    index ``magnitude_tail`` — a tail index near 2.5 gives the "top 3% of
    demand 2-10x higher than the rest" profile of the paper's leftmost
    case-study applications.

    Returns a new array; the input is not modified.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 1:
        raise ConfigurationError(f"values must be 1-D, got shape {values.shape}")
    if spike_rate_per_week < 0:
        raise ConfigurationError(
            f"spike_rate_per_week must be >= 0, got {spike_rate_per_week}"
        )
    if magnitude < 1.0:
        raise ConfigurationError(
            f"spike magnitude must be >= 1 (a multiplier), got {magnitude}"
        )
    if duration_slots_mean < 1.0:
        raise ConfigurationError(
            f"duration_slots_mean must be >= 1 slot, got {duration_slots_mean}"
        )
    if slots_per_week <= 0:
        raise ConfigurationError(
            f"slots_per_week must be > 0, got {slots_per_week}"
        )
    if magnitude_tail <= 1.0:
        raise ConfigurationError(
            f"magnitude_tail must be > 1 for a finite mean, got {magnitude_tail}"
        )

    result = values.copy()
    n = values.shape[0]
    if n == 0 or spike_rate_per_week == 0:
        return result
    generator = derive_rng(rng)
    weeks = n / slots_per_week
    n_spikes = generator.poisson(spike_rate_per_week * weeks)
    for _ in range(n_spikes):
        start = int(generator.integers(0, n))
        duration = 1 + int(generator.geometric(1.0 / duration_slots_mean) - 1)
        stop = min(start + duration, n)
        multiplier = magnitude * (1.0 + generator.pareto(magnitude_tail))
        result[start:stop] = result[start:stop] * multiplier
    return result


def background_floor(values: np.ndarray, floor: float) -> np.ndarray:
    """Raise a series to a minimum background level.

    Even idle enterprise applications consume a baseline of CPU (agents,
    health checks, garbage collection); a hard floor keeps synthetic
    demand from dropping to implausible zeros.
    """
    if floor < 0:
        raise ConfigurationError(f"floor must be >= 0, got {floor}")
    return np.maximum(np.asarray(values, dtype=float), floor)
