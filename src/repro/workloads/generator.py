"""Parametric per-application demand-trace generator.

A :class:`WorkloadSpec` describes one application's statistical profile
(deterministic pattern, scale, noise, spikes); a
:class:`WorkloadGenerator` materialises specs into
:class:`~repro.traces.trace.DemandTrace` instances on a calendar, with all
randomness derived from a single root seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError
from repro.traces.calendar import TraceCalendar
from repro.traces.trace import DemandTrace
from repro.util.rng import SeedSequenceFactory
from repro.workloads.noise import ar1_lognormal_noise, background_floor, inject_spikes
from repro.workloads.patterns import DiurnalPattern, business_hours_pattern


@dataclass(frozen=True)
class WorkloadSpec:
    """Statistical profile of one synthetic application workload.

    Parameters
    ----------
    name:
        Workload identifier.
    pattern:
        Deterministic diurnal/weekly shape in ``[0, 1]``.
    peak_cpus:
        Demand level (in CPUs) that the deterministic pattern's peak maps
        to, before noise and spikes.
    noise_sigma / noise_correlation:
        AR(1) lognormal noise parameters (see
        :func:`~repro.workloads.noise.ar1_lognormal_noise`).
    spike_rate_per_week / spike_magnitude / spike_duration_slots:
        Heavy-tailed spike overlay parameters (see
        :func:`~repro.workloads.noise.inject_spikes`). A rate of 0
        disables spikes.
    floor_cpus:
        Minimum background demand.
    ceiling_cpus:
        Maximum demand. Real traces are bounded by the CPU count of the
        host the application was measured on; without a ceiling the
        Pareto spike tail occasionally produces demands no server could
        ever have served. ``None`` disables the bound.
    """

    name: str
    pattern: DiurnalPattern = field(default_factory=business_hours_pattern)
    peak_cpus: float = 2.0
    noise_sigma: float = 0.2
    noise_correlation: float = 0.85
    spike_rate_per_week: float = 0.0
    spike_magnitude: float = 2.0
    spike_duration_slots: float = 4.0
    spike_magnitude_tail: float = 2.5
    floor_cpus: float = 0.02
    ceiling_cpus: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("workload name must not be empty")
        if self.peak_cpus <= 0:
            raise ConfigurationError(
                f"peak_cpus must be > 0, got {self.peak_cpus}"
            )
        if self.floor_cpus < 0:
            raise ConfigurationError(
                f"floor_cpus must be >= 0, got {self.floor_cpus}"
            )
        if self.ceiling_cpus is not None and self.ceiling_cpus < self.floor_cpus:
            raise ConfigurationError(
                f"ceiling_cpus ({self.ceiling_cpus}) must be >= floor_cpus "
                f"({self.floor_cpus})"
            )


class WorkloadGenerator:
    """Materialise :class:`WorkloadSpec` profiles into demand traces.

    All randomness flows from ``seed``: the same (seed, spec name,
    calendar) triple always yields the identical trace, and distinct
    workloads draw from independent streams.

    >>> generator = WorkloadGenerator(seed=7)
    >>> calendar = TraceCalendar(weeks=1)
    >>> trace = generator.generate(WorkloadSpec(name="app"), calendar)
    >>> len(trace) == calendar.n_observations
    True
    """

    def __init__(self, seed: int | None = None):
        self._seeds = SeedSequenceFactory(seed)
        self.seed = seed

    def generate(self, spec: WorkloadSpec, calendar: TraceCalendar) -> DemandTrace:
        """Generate the demand trace for one spec on ``calendar``."""
        rng = self._seeds.generator("workload", spec.name)
        base = spec.pattern.render(calendar) * spec.peak_cpus
        noise = ar1_lognormal_noise(
            calendar.n_observations,
            sigma=spec.noise_sigma,
            correlation=spec.noise_correlation,
            rng=rng,
        )
        values = base * noise
        if spec.spike_rate_per_week > 0:
            values = inject_spikes(
                values,
                spike_rate_per_week=spec.spike_rate_per_week,
                magnitude=spec.spike_magnitude,
                duration_slots_mean=spec.spike_duration_slots,
                slots_per_week=calendar.slots_per_week,
                rng=rng,
                magnitude_tail=spec.spike_magnitude_tail,
            )
        values = background_floor(values, spec.floor_cpus)
        if spec.ceiling_cpus is not None:
            values = np.minimum(values, spec.ceiling_cpus)
        return DemandTrace(spec.name, values, calendar)

    def generate_many(
        self, specs: list[WorkloadSpec], calendar: TraceCalendar
    ) -> list[DemandTrace]:
        """Generate one trace per spec; names must be unique."""
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ConfigurationError("workload spec names must be unique")
        return [self.generate(spec, calendar) for spec in specs]
