"""All-guaranteed baseline: every allocation in CoS1.

If all demand is associated with the guaranteed class, each server must
reserve the *sum of peak allocations* of its workloads — no statistical
multiplexing is possible, and (as Section VII notes) the case study
would need roughly twice as many servers. This baseline quantifies the
value of having the second class of service at all.
"""

from __future__ import annotations

import numpy as np

from repro.core.qos import ApplicationQoS
from repro.traces.allocation import AllocationTrace, CoSAllocationPair
from repro.traces.trace import DemandTrace


def single_cos_pair(
    demand: DemandTrace, qos: ApplicationQoS
) -> CoSAllocationPair:
    """Translate a workload with all demand in the guaranteed class.

    The ``M_degr`` percentile cap still applies (it is a property of the
    application QoS requirement, not of the CoS split), but the entire
    capped allocation is guaranteed, so placement degenerates to peak-
    based packing.
    """
    from repro.core.degradation import new_max_demand

    cap = new_max_demand(demand, qos)
    capped = np.minimum(demand.values, cap)
    burst_factor = qos.acceptable.burst_factor
    calendar = demand.calendar
    return CoSAllocationPair(
        demand.name,
        AllocationTrace(
            f"{demand.name}.cos1",
            capped * burst_factor,
            calendar,
            demand.attribute,
        ),
        AllocationTrace(
            f"{demand.name}.cos2",
            np.zeros(calendar.n_observations),
            calendar,
            demand.attribute,
        ),
    )
