"""Percentile-capping baseline (Urgaonkar et al., OSDI 2002).

Related work limits each application's capacity requirement to a
percentile of its demand — e.g. provision for the 97th percentile and
let the rest degrade. The paper's criticism (Section VIII) is that a
bare percentile budget ignores *how the degraded measurements cluster*:
a 3% budget can be spent as a single multi-hour outage. This module
implements the baseline and the run-length analysis that exposes the
difference against R-Opus's ``M_degr``/``T_degr`` semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import QoSSpecificationError
from repro.traces.allocation import AllocationTrace, CoSAllocationPair
from repro.traces.ops import contiguous_runs_above
from repro.traces.trace import DemandTrace


def percentile_cap_pair(
    demand: DemandTrace,
    percentile: float,
    burst_factor: float = 2.0,
) -> CoSAllocationPair:
    """Translate a workload by capping demand at a percentile.

    All allocation rides in the guaranteed class (the baseline predates
    multi-CoS pools); demand above the percentile cap is simply not
    provisioned for.
    """
    if not 0 < percentile <= 100:
        raise QoSSpecificationError(
            f"percentile must be in (0, 100], got {percentile}"
        )
    if burst_factor <= 0:
        raise QoSSpecificationError(
            f"burst_factor must be > 0, got {burst_factor}"
        )
    cap = demand.percentile(percentile, method="higher")
    capped = np.minimum(demand.values, cap)
    calendar = demand.calendar
    return CoSAllocationPair(
        demand.name,
        AllocationTrace(
            f"{demand.name}.cos1",
            capped * burst_factor,
            calendar,
            demand.attribute,
        ),
        AllocationTrace(
            f"{demand.name}.cos2",
            np.zeros(calendar.n_observations),
            calendar,
            demand.attribute,
        ),
    )


@dataclass(frozen=True)
class DegradedRunProfile:
    """How a workload's degraded observations cluster in time."""

    workload: str
    degraded_fraction: float
    n_runs: int
    longest_run_minutes: float
    mean_run_minutes: float


def degraded_run_profile(
    demand: DemandTrace,
    percentile: float,
) -> DegradedRunProfile:
    """Run-length statistics of the above-percentile observations.

    An observation is "degraded" under the baseline exactly when its
    demand exceeds the percentile cap. The profile shows whether the
    degradation budget is spent in short blips (harmless) or sustained
    outages (the failure mode ``T_degr`` exists to prevent).
    """
    if not 0 < percentile <= 100:
        raise QoSSpecificationError(
            f"percentile must be in (0, 100], got {percentile}"
        )
    cap = demand.percentile(percentile, method="higher")
    runs = contiguous_runs_above(demand.values, cap)
    slot_minutes = demand.calendar.slot_minutes
    n = len(demand)
    degraded = sum(run.length for run in runs)
    return DegradedRunProfile(
        workload=demand.name,
        degraded_fraction=degraded / n if n else 0.0,
        n_runs=len(runs),
        longest_run_minutes=(
            max((run.length for run in runs), default=0) * slot_minutes
        ),
        mean_run_minutes=(
            degraded / len(runs) * slot_minutes if runs else 0.0
        ),
    )
