"""Baseline capacity-management strategies from the paper's related work.

* :mod:`repro.baselines.percentile_cap` — cap each workload at a demand
  percentile (Urgaonkar et al., OSDI 2002), with no control over how
  long degradation persists;
* :mod:`repro.baselines.single_cos` — place all demand in the
  guaranteed class, forgoing statistical multiplexing entirely.
"""

from repro.baselines.percentile_cap import (
    degraded_run_profile,
    percentile_cap_pair,
)
from repro.baselines.single_cos import single_cos_pair

__all__ = [
    "degraded_run_profile",
    "percentile_cap_pair",
    "single_cos_pair",
]
