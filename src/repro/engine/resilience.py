"""Fault-tolerant execution: retries, timeouts, and degradation ladders.

The plain :class:`~repro.engine.executor.ParallelExecutor` dies with the
first worker: a SIGKILLed process breaks the pool, a wedged worker
blocks ``map`` forever, and either one kills a multi-hour planning run.
:class:`ResilientExecutor` wraps the same fan-out contract
(``fn(shared, item)`` work units, order-preserving ``map``) with the
recovery machinery a performability framework owes itself:

* **bounded retries** with exponential backoff and *deterministic*
  jitter (seeded through :mod:`repro.util.rng`; no wall-clock
  randomness, so ROP002 stays clean and chaos runs replay exactly);
* **stuck-worker detection**: when no work unit completes within the
  task deadline, the pool's processes are killed and respawned, and the
  unfinished units are retried;
* **``BrokenProcessPool`` recovery**: a crashed worker costs one pool
  respawn and a retry of the unfinished units, not the run;
* **graceful degradation ladders**: shared-memory broadcast falls back
  to pickle, and a process pool that keeps failing falls back to serial
  in-driver execution — each step emits instrumentation events and
  counters instead of dying.

Work units are pure functions of their inputs (the executor contract),
so a retried unit recomputes exactly the result the failed attempt
would have produced; resilience never changes results, only whether a
run survives to produce them. Only *infrastructure* failures are
retried — domain errors (:class:`~repro.exceptions.ROpusError`
subclasses raised by the work function, bad-input ``TypeError``\\ s)
propagate immediately, because retrying deterministic code on the same
input cannot fix them.

Fault injection from :mod:`repro.engine.faults` hooks in here: items
are tagged with site-occurrence numbers in the driver (deterministic
under any chunking), and the worker-side wrapper consults the
:class:`~repro.engine.faults.FaultPlan` to crash, hang, or corrupt
exactly the scheduled invocations.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Optional, Sequence

from repro.engine import executor as _executor_module
from repro.engine.broadcast import publish, release
from repro.engine.executor import Executor, ExecutorSession, WorkFn
from repro.engine.faults import (
    CorruptedResult,
    FaultClock,
    FaultKind,
    FaultPlan,
    InjectedFault,
    InjectedWorkerCrash,
    InjectedWorkerHang,
)
from repro.engine.instrumentation import Instrumentation
from repro.exceptions import ConfigurationError, ResilienceError, ROpusError
from repro.util.floats import is_zero

#: Exit status an injected worker crash dies with (SIGKILL-alike: the
#: pool observes an abrupt worker death, exactly as if the OOM killer
#: or an operator's ``kill -9`` took the process).
_CRASH_EXIT_STATUS = 139


@dataclass(frozen=True)
class ResilienceConfig:
    """Tuning knobs for the fault-tolerant execution layer.

    Attributes
    ----------
    max_retries:
        Bounded retry budget *per degradation rung*: an initial attempt
        plus at most this many retries run on the process pool before
        the ladder degrades to serial, where the same budget applies
        once more before :class:`~repro.exceptions.ResilienceError`.
    task_timeout_seconds:
        Stuck-worker deadline: when no in-flight work unit completes
        for this long, the pool is presumed wedged, its processes are
        killed, and the unfinished units are retried. ``None`` disables
        the deadline (the default: plain runs never pay a timer).
    backoff_base_seconds / backoff_multiplier:
        Retry ``k`` sleeps ``base * multiplier**k``, scaled by jitter.
    backoff_jitter:
        Fractional jitter amplitude: each delay is stretched by up to
        this fraction, drawn deterministically from ``jitter_seed`` so
        two replicas of one seeded run sleep identically.
    jitter_seed:
        Root seed of the jitter stream.
    fault_plan:
        Deterministic fault schedule to inject (``None``: no faults).
    sleep:
        Injectable sleeper so tests assert exact backoff sequences
        without waiting through them.
    """

    max_retries: int = 2
    task_timeout_seconds: Optional[float] = None
    backoff_base_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_jitter: float = 0.25
    jitter_seed: int = 0
    fault_plan: Optional[FaultPlan] = None
    sleep: Callable[[float], None] = field(default=time.sleep, compare=False)

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if (
            self.task_timeout_seconds is not None
            and not self.task_timeout_seconds > 0
        ):
            raise ConfigurationError(
                "task_timeout_seconds must be > 0 when set, got "
                f"{self.task_timeout_seconds}"
            )
        if self.backoff_base_seconds < 0:
            raise ConfigurationError("backoff_base_seconds must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ConfigurationError("backoff_jitter must be in [0, 1]")

    @property
    def plan(self) -> FaultPlan:
        return self.fault_plan if self.fault_plan is not None else FaultPlan.none()


def backoff_delay(config: ResilienceConfig, retry_index: int) -> float:
    """The (deterministically jittered) sleep before retry ``retry_index``.

    >>> config = ResilienceConfig(backoff_jitter=0.0)
    >>> backoff_delay(config, 0)
    0.05
    >>> backoff_delay(config, 2)
    0.2
    """
    from repro.util.rng import SeedSequenceFactory

    base = config.backoff_base_seconds * (
        config.backoff_multiplier ** retry_index
    )
    if is_zero(config.backoff_jitter) or is_zero(base):
        return base
    rng = SeedSequenceFactory(config.jitter_seed).generator(
        "backoff", retry_index
    )
    return base * (1.0 + config.backoff_jitter * float(rng.random()))


# ----------------------------------------------------------------------
# Worker-side invocation with fault hooks
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _FaultTags:
    """The per-map slice of the fault plan shipped to workers.

    ``simulate`` selects in-process semantics (raise typed exceptions)
    for backends without worker processes to kill; process workers die
    and sleep for real so the driver-side recovery paths face the same
    signals production failures produce.
    """

    crash: frozenset[int] = frozenset()
    hang: frozenset[int] = frozenset()
    corrupt: frozenset[int] = frozenset()
    hang_seconds: float = 5.0
    simulate: bool = True

    @classmethod
    def from_plan(cls, plan: FaultPlan, simulate: bool) -> "_FaultTags":
        return cls(
            crash=plan.occurrences(FaultKind.WORKER_CRASH),
            hang=plan.occurrences(FaultKind.WORKER_HANG),
            corrupt=plan.occurrences(FaultKind.CORRUPT_RESULT),
            hang_seconds=plan.hang_seconds,
            simulate=simulate,
        )

    @property
    def empty(self) -> bool:
        return not (self.crash or self.hang or self.corrupt)


def _invoke_tagged(
    fn: WorkFn, tags: _FaultTags, shared: Any, tagged_item: tuple[int, Any]
) -> Any:
    """Run one work unit, applying any fault scheduled at its occurrence."""
    occurrence, item = tagged_item
    if occurrence in tags.crash:
        if tags.simulate:
            raise InjectedWorkerCrash(
                f"injected worker crash at occurrence {occurrence}"
            )
        # Die the way a SIGKILLed worker dies: abruptly, with no
        # cleanup, so the pool reports BrokenProcessPool to the driver.
        os._exit(_CRASH_EXIT_STATUS)
    if occurrence in tags.hang:
        if tags.simulate:
            raise InjectedWorkerHang(
                f"injected worker hang at occurrence {occurrence}"
            )
        time.sleep(tags.hang_seconds)
    if occurrence in tags.corrupt:
        return CorruptedResult(occurrence)
    return fn(shared, item)


def _invoke_tagged_in_pool(
    fn: WorkFn, tags: _FaultTags, tagged_item: tuple[int, Any]
) -> Any:
    """Process-pool entry point: the shared payload was installed by the
    pool initializer (see :func:`repro.engine.executor._install_shared`)."""
    return _invoke_tagged(
        fn, tags, _executor_module._WORKER_SHARED, tagged_item
    )


# ----------------------------------------------------------------------
# Attempt outcomes
# ----------------------------------------------------------------------
@dataclass
class _AttemptOutcome:
    """What one map attempt produced, split by how each item ended."""

    completed: dict[int, Any] = field(default_factory=dict)
    retryable: list[int] = field(default_factory=list)
    fatal: dict[int, BaseException] = field(default_factory=dict)


class _ResilientSession(ExecutorSession):
    """One fan-out context with recovery wrapped around every map."""

    def __init__(self, owner: "ResilientExecutor", shared: Any):
        self._owner = owner
        self._config = owner.config
        self._shared = shared
        self._pool: Optional[ProcessPoolExecutor] = None
        self._broadcast: Any = shared
        self._segment_name: Optional[str] = None
        self._rung = "parallel" if owner.workers > 1 else "serial"
        self.parallelism = owner.workers if self._rung == "parallel" else 1
        self.broadcast_mode = "inline"
        self.broadcast_bytes = 0
        if self._rung == "parallel":
            self._open_parallel()

    # -- instrumentation plumbing --------------------------------------
    def _count(self, name: str, increment: float = 1) -> None:
        instrumentation = self._owner.instrumentation
        if instrumentation is not None:
            instrumentation.count(name, increment)

    def _event(self, name: str, **fields: object) -> None:
        instrumentation = self._owner.instrumentation
        if instrumentation is not None:
            instrumentation.event(name, **fields)

    # -- pool lifecycle ------------------------------------------------
    def _open_parallel(self) -> None:
        plan = self._config.plan
        occurrence = self._owner.clock.take("broadcast")[0]
        if plan.fires(FaultKind.BROADCAST_FAILURE, occurrence):
            # Degrade exactly as a real shared-memory failure would:
            # ship the payload by pickle through the pool initializer.
            self._count("resilience.faults_injected")
            self._count("resilience.broadcast_fallbacks")
            self._event("resilience.broadcast_fallback", occurrence=occurrence)
            self._broadcast, self._segment_name = self._shared, None
            self.broadcast_bytes = 0
        else:
            broadcast, segment, shared_bytes = publish(self._shared)
            self._broadcast = broadcast
            self._segment_name = segment.name if segment is not None else None
            self.broadcast_bytes = shared_bytes
        self.broadcast_mode = (
            "shared_memory" if self._segment_name is not None else "pickle"
        )
        self._pool = self._spawn_pool()

    def _spawn_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self._owner.workers,
            initializer=_executor_module._install_shared,
            initargs=(self._broadcast,),
        )

    def _kill_pool(self) -> None:
        """Tear the pool down without waiting on wedged workers."""
        pool = self._pool
        self._pool = None
        if pool is None:
            return
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except (OSError, ValueError):  # pragma: no cover - racing exit
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def _respawn_pool(self, reason: str) -> None:
        self._kill_pool()
        self._count("resilience.pool_respawns")
        self._event("resilience.pool_respawn", reason=reason)
        self._pool = self._spawn_pool()

    def _degrade_to_serial(self) -> None:
        self._kill_pool()
        if self._segment_name is not None:
            release(self._segment_name)
            self._segment_name = None
        self._rung = "serial"
        self.parallelism = 1
        self._count("resilience.serial_fallbacks")
        self._event("resilience.degraded_serial")

    def close(self) -> None:
        pool = self._pool
        self._pool = None
        if pool is not None:
            pool.shutdown(wait=True)
        if self._segment_name is not None:
            release(self._segment_name)
            self._segment_name = None

    # -- the resilient map ---------------------------------------------
    def map(
        self,
        fn: WorkFn,
        items: Sequence[Any],
        *,
        chunksize: int | None = None,
    ) -> list[Any]:
        items = list(items)
        if not items:
            return []
        results: dict[int, Any] = {}
        pending = list(range(len(items)))
        retries_this_rung = 0
        while pending:
            outcome = self._run_attempt(fn, items, pending)
            results.update(outcome.completed)
            if outcome.fatal:
                self._raise_fatal(outcome)
            pending = sorted(outcome.retryable)
            if not pending:
                break
            if retries_this_rung >= self._config.max_retries:
                if self._rung == "parallel":
                    # Ladder: the pool keeps failing — run the rest in
                    # the driver, where there is no pool to break.
                    self._degrade_to_serial()
                    retries_this_rung = 0
                    continue
                raise ResilienceError(
                    f"{len(pending)} work units still failing after "
                    f"{self._config.max_retries} retries on the serial "
                    "fallback; giving up"
                )
            delay = backoff_delay(self._config, retries_this_rung)
            retries_this_rung += 1
            self._count("resilience.retries")
            self._event(
                "resilience.retry",
                rung=self._rung,
                retry=retries_this_rung,
                items=len(pending),
                delay_seconds=delay,
            )
            if delay > 0:
                self._config.sleep(delay)
        return [results[index] for index in range(len(items))]

    def _raise_fatal(self, outcome: _AttemptOutcome) -> None:
        first_index = min(outcome.fatal)
        raise outcome.fatal[first_index]

    def _tag(self, pending: Sequence[int]) -> list[tuple[int, int]]:
        """Assign a fresh worker-site occurrence to each pending item.

        Returns ``(occurrence, item index)`` pairs. Numbering happens
        driver-side in submission order, so the schedule is independent
        of which worker runs what — and retried items draw *new*
        occurrences, which is what makes scheduled faults transient.
        """
        occurrences = self._owner.clock.take("worker", len(pending))
        return list(zip(occurrences, pending))

    def _run_attempt(
        self, fn: WorkFn, items: Sequence[Any], pending: Sequence[int]
    ) -> _AttemptOutcome:
        if self._rung == "serial":
            return self._attempt_serial(fn, items, pending)
        return self._attempt_parallel(fn, items, pending)

    # -- serial rung ---------------------------------------------------
    def _attempt_serial(
        self, fn: WorkFn, items: Sequence[Any], pending: Sequence[int]
    ) -> _AttemptOutcome:
        tags = _FaultTags.from_plan(self._config.plan, simulate=True)
        outcome = _AttemptOutcome()
        for occurrence, index in self._tag(pending):
            try:
                value = _invoke_tagged(
                    fn, tags, self._shared, (occurrence, items[index])
                )
            except InjectedWorkerHang:
                self._count("resilience.faults_injected")
                self._count("resilience.deadline_exceeded")
                outcome.retryable.append(index)
            except InjectedFault:
                self._count("resilience.faults_injected")
                outcome.retryable.append(index)
            except (KeyboardInterrupt, SystemExit):
                # Operator interrupts are never "an item's outcome":
                # propagate immediately instead of finishing the batch.
                raise
            except BaseException as error:  # noqa: B036 - classified below
                # Fatal errors abort the whole map (partial results are
                # discarded), so evaluating the remaining items would
                # only delay the raise.
                outcome.fatal[index] = error
                break
            else:
                if isinstance(value, CorruptedResult):
                    self._count("resilience.faults_injected")
                    self._count("resilience.corrupt_results")
                    outcome.retryable.append(index)
                else:
                    outcome.completed[index] = value
        return outcome

    # -- parallel rung -------------------------------------------------
    def _attempt_parallel(
        self, fn: WorkFn, items: Sequence[Any], pending: Sequence[int]
    ) -> _AttemptOutcome:
        tags = _FaultTags.from_plan(self._config.plan, simulate=False)
        wrapped = partial(_invoke_tagged_in_pool, fn, tags)
        outcome = _AttemptOutcome()
        futures = {}
        try:
            for occurrence, index in self._tag(pending):
                futures[
                    self._pool.submit(wrapped, (occurrence, items[index]))
                ] = index
        except BrokenProcessPool:
            # The pool broke before (or while) accepting work. The
            # respawn cancels whatever was already handed to the dead
            # pool (waiting on those futures would raise
            # CancelledError), so the whole batch retries on the fresh
            # pool — work units are pure, recomputing is safe.
            outcome.retryable.extend(pending)
            self._respawn_pool("broken_on_submit")
            return outcome
        in_flight = set(futures)
        pool_broken = False
        while in_flight:
            done, in_flight = wait(
                in_flight,
                timeout=self._config.task_timeout_seconds,
                return_when=FIRST_COMPLETED,
            )
            if not done:
                # Deadline passed with zero progress: stuck worker(s).
                # Kill the pool (reclaiming any wedged process) and
                # retry everything still in flight.
                self._count("resilience.deadline_exceeded")
                self._event(
                    "resilience.deadline_exceeded",
                    items=len(in_flight),
                    timeout_seconds=self._config.task_timeout_seconds,
                )
                for future in in_flight:
                    outcome.retryable.append(futures[future])
                self._respawn_pool("stuck_worker")
                return outcome
            for future in done:
                index = futures[future]
                try:
                    error = future.exception()
                except CancelledError:
                    # A cancelled future (its pool was torn down by a
                    # concurrent recovery path) is just lost work.
                    outcome.retryable.append(index)
                    continue
                if error is None:
                    value = future.result()
                    if isinstance(value, CorruptedResult):
                        self._count("resilience.faults_injected")
                        self._count("resilience.corrupt_results")
                        outcome.retryable.append(index)
                    else:
                        outcome.completed[index] = value
                elif isinstance(error, BrokenProcessPool):
                    # One worker died; the whole pool is unusable and
                    # every unfinished unit fails with this error.
                    outcome.retryable.append(index)
                    pool_broken = True
                elif isinstance(error, InjectedFault):
                    self._count("resilience.faults_injected")
                    outcome.retryable.append(index)
                else:
                    outcome.fatal[index] = error
            if pool_broken:
                for future in in_flight:
                    outcome.retryable.append(futures[future])
                self._respawn_pool("broken_process_pool")
                return outcome
        return outcome


class ResilientExecutor(Executor):
    """A fan-out backend that survives worker failure.

    ``workers in (None, 1)`` runs work units in the driver (the serial
    rung only — injected faults are simulated as typed exceptions);
    larger counts open a process pool with the full recovery ladder.
    """

    name = "resilient"

    def __init__(
        self,
        workers: int | None = None,
        config: ResilienceConfig | None = None,
    ):
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = 1 if workers is None else workers
        self.config = config if config is not None else ResilienceConfig()
        self.instrumentation: Optional[Instrumentation] = None
        self.clock = FaultClock()

    def attach_instrumentation(self, instrumentation: Instrumentation) -> None:
        """Called by the owning engine so recovery telemetry lands in
        the same sink as stage timings and kernel counters."""
        self.instrumentation = instrumentation

    def session(self, shared: Any = None) -> ExecutorSession:
        return _ResilientSession(self, shared)


def make_resilient_executor(
    workers: int | None = None, config: ResilienceConfig | None = None
) -> Executor:
    """A resilient backend, serial- or pool-backed by worker count."""
    return ResilientExecutor(workers, config)


__all__ = [
    "ResilienceConfig",
    "ResilientExecutor",
    "backoff_delay",
    "make_resilient_executor",
]
