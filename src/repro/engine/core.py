"""The execution engine: one executor plus one instrumentation sink.

:class:`ExecutionEngine` is the object the :class:`~repro.core.framework.ROpus`
facade threads down through translation, placement, and failure planning.
It bundles the two cross-cutting concerns every compute layer shares:

* *where* fan-out work runs (:class:`~repro.engine.executor.Executor`);
* *what we learn* about the run
  (:class:`~repro.engine.instrumentation.Instrumentation`).

The default engine is serial and always-instrumented, so existing code
gains stage timings for free and parallelism is strictly opt-in.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.engine.executor import (
    Executor,
    ExecutorSession,
    SerialExecutor,
    make_executor,
)
from repro.engine.instrumentation import Instrumentation


class ExecutionEngine:
    """Bundles an execution backend with an instrumentation sink.

    >>> engine = ExecutionEngine.serial()
    >>> engine.executor.name
    'serial'
    >>> engine = ExecutionEngine.with_workers(1)
    >>> engine.executor.name
    'serial'
    """

    def __init__(
        self,
        executor: Optional[Executor] = None,
        instrumentation: Optional[Instrumentation] = None,
    ):
        self.executor = executor if executor is not None else SerialExecutor()
        self.instrumentation = (
            instrumentation if instrumentation is not None else Instrumentation()
        )
        # Executors that emit recovery telemetry (the resilient backend)
        # expose attach_instrumentation; wiring it here keeps retries,
        # pool respawns, and degradations in the same sink as timings.
        attach = getattr(self.executor, "attach_instrumentation", None)
        if callable(attach):
            attach(self.instrumentation)

    @classmethod
    def serial(
        cls, instrumentation: Optional[Instrumentation] = None
    ) -> "ExecutionEngine":
        """The default engine: inline execution, fresh instrumentation."""
        return cls(SerialExecutor(), instrumentation)

    @classmethod
    def with_workers(
        cls,
        workers: int | None,
        instrumentation: Optional[Instrumentation] = None,
    ) -> "ExecutionEngine":
        """Serial for ``workers in (None, 1)``, else a process-pool backend."""
        return cls(make_executor(workers), instrumentation)

    @classmethod
    def resilient(
        cls,
        workers: int | None = None,
        config: "Any" = None,
        instrumentation: Optional[Instrumentation] = None,
    ) -> "ExecutionEngine":
        """A fault-tolerant engine: retries, timeouts, degradation ladders.

        ``config`` is a :class:`~repro.engine.resilience.ResilienceConfig`
        (default-constructed when omitted). The import is local so plain
        serial pipelines never pay for the recovery machinery.
        """
        from repro.engine.resilience import make_resilient_executor

        return cls(make_resilient_executor(workers, config), instrumentation)

    def session(self, shared: "Any" = None) -> ExecutorSession:
        """Open an executor session and account its broadcast cost.

        Counts one ``broadcast.sessions``, the transport that carried
        the shared payload (``broadcast.shared_memory_sessions`` vs
        ``broadcast.pickle_sessions`` — serial sessions hand the payload
        over by reference and count neither), and the bytes published
        zero-copy (``broadcast.bytes_shared``).
        """
        session = self.executor.session(shared)
        self.instrumentation.count("broadcast.sessions")
        if session.broadcast_mode == "shared_memory":
            self.instrumentation.count("broadcast.shared_memory_sessions")
            self.instrumentation.count(
                "broadcast.bytes_shared", session.broadcast_bytes
            )
        elif session.broadcast_mode == "pickle":
            self.instrumentation.count("broadcast.pickle_sessions")
        return session

    def map(
        self,
        fn: "Any",
        items: "Any",
        *,
        shared: "Any" = None,
        chunksize: int | None = None,
    ) -> list["Any"]:
        """One-shot fan-out through :meth:`session` (so it is counted)."""
        with self.session(shared) as session:
            return session.map(fn, items, chunksize=chunksize)

    def close(self) -> None:
        self.executor.close()

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"ExecutionEngine(executor={self.executor.name!r})"
