"""Pluggable execution backends for the pipeline's fan-out work.

Every embarrassingly parallel loop in the framework — per-application
QoS translation, per-generation GA evaluation, failure what-if sweeps —
routes through an :class:`Executor`. Two backends are provided:

* :class:`SerialExecutor` (the default) runs work units inline and is
  bit-identical to the historical ``for`` loops;
* :class:`ParallelExecutor` fans work units out over a
  :class:`concurrent.futures.ProcessPoolExecutor` with chunked,
  picklable work units.

Work units are *pure functions of their inputs*: ``fn(shared, item)``
where ``shared`` is an immutable payload broadcast once per session
(e.g. the stacked allocation matrices of a placement evaluator) and
``item`` is the per-task argument. Seeded RNG state stays in the
driver process, so results are deterministic and backend-independent;
``map`` always preserves input order.
"""

from __future__ import annotations

import os
import weakref
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from functools import partial
from typing import Any, Callable, Sequence, TypeVar

from repro.engine.broadcast import publish, release, resolve
from repro.exceptions import ConfigurationError

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")
WorkFn = Callable[[Any, ItemT], ResultT]

# Payload broadcast to worker processes, installed once per process by the
# pool initializer so repeated map calls in one session don't re-pickle it.
# Shared-memory handles are resolved here, once, into read-only array
# views over the published segment (see repro.engine.broadcast).
_WORKER_SHARED: Any = None


def _install_shared(payload: Any) -> None:
    global _WORKER_SHARED
    if os.environ.get("ROPUS_SANITIZE") == "1":
        # Arm the determinism sanitizer before any work runs in this
        # process (the env var is inherited from the driver). Imported
        # lazily so unsanitized runs never load the analysis package.
        from repro.analysis.sanitizer import maybe_install

        maybe_install()
    if os.environ.get("ROPUS_LEAKTRACK") == "1":
        # Same discipline for the resource-leak tracker: workers track
        # their own acquisitions (nested pools, temp dirs) and report
        # at their interpreter exit.
        from repro.analysis.leaktrack import maybe_install as _arm_leaktrack

        _arm_leaktrack()
    _WORKER_SHARED = resolve(payload)


def _invoke_shared(fn: WorkFn, item: Any) -> Any:
    return fn(_WORKER_SHARED, item)


class ExecutorSession(ABC):
    """One fan-out context with a shared payload already broadcast.

    Sessions exist so callers with *many* map calls over the same large
    payload (the GA evaluates one batch per generation against the same
    allocation matrices) pay the broadcast cost once, not per call.
    """

    #: Number of work units the backend can run concurrently; callers
    #: use it to size chunks (one batched work unit per slot).
    parallelism: int = 1
    #: How the shared payload reached the workers.
    broadcast_mode: str = "inline"
    #: Bytes published through shared memory (0 on the pickle/inline paths).
    broadcast_bytes: int = 0

    @abstractmethod
    def map(
        self,
        fn: WorkFn,
        items: Sequence[Any],
        *,
        chunksize: int | None = None,
    ) -> list[Any]:
        """Apply ``fn(shared, item)`` to every item, preserving order."""

    def close(self) -> None:  # pragma: no cover - overridden where needed
        pass

    def __enter__(self) -> "ExecutorSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class Executor(ABC):
    """Protocol all execution backends implement."""

    name: str = "abstract"

    @abstractmethod
    def session(self, shared: Any = None) -> ExecutorSession:
        """Open a fan-out session with ``shared`` broadcast to workers."""

    def map(
        self,
        fn: WorkFn,
        items: Sequence[Any],
        *,
        shared: Any = None,
        chunksize: int | None = None,
    ) -> list[Any]:
        """One-shot fan-out: open a session, map, close."""
        with self.session(shared) as open_session:
            return open_session.map(fn, items, chunksize=chunksize)

    def close(self) -> None:
        """Release any backend resources (sessions own theirs)."""


class _SerialSession(ExecutorSession):
    def __init__(self, shared: Any):
        self._shared = shared

    def map(
        self,
        fn: WorkFn,
        items: Sequence[Any],
        *,
        chunksize: int | None = None,
    ) -> list[Any]:
        return [fn(self._shared, item) for item in items]


class SerialExecutor(Executor):
    """Runs every work unit inline in the driver process."""

    name = "serial"

    def session(self, shared: Any = None) -> ExecutorSession:
        return _SerialSession(shared)


class _ParallelSession(ExecutorSession):
    def __init__(self, pool: ProcessPoolExecutor, workers: int):
        self._pool = pool
        self._workers = workers
        self.parallelism = workers

    def map(
        self,
        fn: WorkFn,
        items: Sequence[Any],
        *,
        chunksize: int | None = None,
    ) -> list[Any]:
        items = list(items)
        if not items:
            return []
        if chunksize is None:
            # Amortise per-task IPC without starving workers: aim for a
            # few chunks per worker so stragglers still balance.
            chunksize = max(1, len(items) // (self._workers * 4))
        return list(
            self._pool.map(partial(_invoke_shared, fn), items, chunksize=chunksize)
        )

    def close(self) -> None:
        self._pool.shutdown(wait=True)


class ParallelExecutor(Executor):
    """Fans work units out over a process pool.

    Parameters
    ----------
    workers:
        Number of worker processes; defaults to the CPU count. Work
        functions and items must be picklable (module-level functions of
        plain data), and must not depend on driver-side mutable state —
        caches live in the driver and are reconciled after each map.
    chunksize:
        Default chunk size for :meth:`ExecutorSession.map`; ``None``
        derives one from the batch size and worker count.
    """

    name = "parallel"

    def __init__(self, workers: int | None = None, chunksize: int | None = None):
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.chunksize = chunksize

    def session(self, shared: Any = None) -> ExecutorSession:
        # Publish the payload's arrays through shared memory when
        # possible; workers then attach one physical copy instead of
        # each unpickling their own (repro.engine.broadcast documents
        # when this falls back to the plain pickle path).
        broadcast, segment, shared_bytes = publish(shared)
        # Between publishing the segment and handing both resources to
        # the session object, a failure (pool spawn, session ctor)
        # would otherwise strand them until interpreter exit — fatal
        # for a long-running planner that opens sessions per request.
        pool = None
        try:
            pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_install_shared,
                initargs=(broadcast,),
            )
            return _ParallelSessionWithDefault(
                pool, self.workers, self.chunksize, segment, shared_bytes
            )
        except BaseException:
            try:
                if pool is not None:
                    pool.shutdown(wait=False)
            finally:
                if segment is not None:
                    release(segment.name)
            raise


class _ParallelSessionWithDefault(_ParallelSession):
    def __init__(
        self,
        pool: ProcessPoolExecutor,
        workers: int,
        chunksize: int | None,
        segment: Any = None,
        shared_bytes: int = 0,
    ):
        super().__init__(pool, workers)
        self._default_chunksize = chunksize
        self._segment = segment
        self.broadcast_bytes = shared_bytes
        self.broadcast_mode = "shared_memory" if segment is not None else "pickle"
        # Sessions abandoned without close() (an exception unwound past
        # the context manager, an aborted run) must not leak their
        # /dev/shm segment: the finalizer releases it at GC time, and
        # the broadcast module's atexit sweep covers interpreter exit.
        self._release_segment = (
            weakref.finalize(self, release, segment.name)
            if segment is not None
            else None
        )

    def close(self) -> None:
        super().close()
        if self._release_segment is not None:
            # Workers have exited (shutdown waited), so releasing here
            # drops the last reference to the segment.
            self._release_segment()
            self._release_segment = None
            self._segment = None

    def map(
        self,
        fn: WorkFn,
        items: Sequence[Any],
        *,
        chunksize: int | None = None,
    ) -> list[Any]:
        if chunksize is None:
            chunksize = self._default_chunksize
        return super().map(fn, items, chunksize=chunksize)


def make_executor(workers: int | None = None) -> Executor:
    """Backend from a worker count: serial for ``None``/``1``, else parallel."""
    if workers is not None and workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if workers is None or workers == 1:
        return SerialExecutor()
    return ParallelExecutor(workers=workers)
