"""Named stage timers, counters, and a structured event log.

Every compute layer of the pipeline (translation, placement, failure
planning, the management loops) emits into one shared
:class:`Instrumentation` instance owned by the
:class:`~repro.engine.core.ExecutionEngine`. The facility answers the
question Table I runs could not: *which stage dominates the wall-clock*?

Design constraints:

* recording must be cheap enough to leave on permanently (a dict update
  and a ``perf_counter`` call per stage exit);
* stages are re-entrant — the same stage name may be timed many times
  (e.g. one ``translation`` entry per planning run) and accumulates;
* the clock is injectable so tests can assert exact timings.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping


@dataclass
class StageStats:
    """Accumulated timing statistics for one named stage."""

    name: str
    calls: int = 0
    total_seconds: float = 0.0
    last_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0


@dataclass(frozen=True)
class Event:
    """One entry of the structured event log."""

    name: str
    timestamp: float
    fields: Mapping[str, object] = field(default_factory=dict)


class Instrumentation:
    """Collects stage timings, counters, and events from any layer.

    >>> ticks = iter(range(100))
    >>> instr = Instrumentation(clock=lambda: float(next(ticks)))
    >>> with instr.stage("translation"):
    ...     pass
    >>> instr.timings()["translation"]
    1.0
    >>> instr.count("translation.workloads", 26)
    >>> instr.counters()["translation.workloads"]
    26.0
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._stages: dict[str, StageStats] = {}
        self._counters: dict[str, float] = {}
        self._events: list[Event] = []

    # -- stage timers --------------------------------------------------
    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a block of work under ``name`` (re-entrant, accumulating)."""
        start = self._clock()
        try:
            yield
        finally:
            self.record_stage(name, self._clock() - start)

    def record_stage(self, name: str, seconds: float) -> None:
        """Fold an externally measured duration into a stage's stats."""
        stats = self._stages.get(name)
        if stats is None:
            stats = self._stages[name] = StageStats(name=name)
        stats.calls += 1
        stats.total_seconds += seconds
        stats.last_seconds = seconds

    def stage_stats(self) -> list[StageStats]:
        """Stage statistics in first-recorded order."""
        return list(self._stages.values())

    def timings(self) -> dict[str, float]:
        """Total seconds per stage name."""
        return {name: stats.total_seconds for name, stats in self._stages.items()}

    # -- counters ------------------------------------------------------
    def count(self, name: str, increment: float = 1) -> None:
        """Add ``increment`` to a named counter."""
        self._counters[name] = self._counters.get(name, 0.0) + float(increment)

    def counters(self) -> dict[str, float]:
        return dict(self._counters)

    # -- structured events ---------------------------------------------
    def event(self, name: str, **fields: object) -> None:
        """Append one entry to the structured event log."""
        self._events.append(Event(name=name, timestamp=self._clock(), fields=fields))

    def events(self) -> tuple[Event, ...]:
        return tuple(self._events)

    # -- deltas --------------------------------------------------------
    def snapshot(self) -> dict[str, float]:
        """A timing snapshot usable with :meth:`timings_since`."""
        return self.timings()

    def counters_since(self, snapshot: Mapping[str, float]) -> dict[str, float]:
        """Per-counter increments accumulated since ``snapshot``.

        The snapshot is a :meth:`counters` copy taken earlier.
        Pre-existing counters that did not advance are omitted
        (mirroring :meth:`timings_since`), but counters *created* since
        the snapshot are kept even at a zero delta: a layer that
        records a full counter set with some zero values (e.g. the
        analytic kernel finishing without bracket iterations) reports
        those zeros instead of silently dropping the name, so counter
        sets stay comparable across runs and kernel modes.
        """
        deltas = {}
        for name, total in self._counters.items():
            delta = total - snapshot.get(name, 0.0)
            if delta > 0.0 or name not in snapshot:
                deltas[name] = delta
        return deltas

    def timings_since(self, snapshot: Mapping[str, float]) -> dict[str, float]:
        """Per-stage seconds accumulated since ``snapshot`` was taken.

        Stages that did not advance are omitted, so the result of one
        planning run only names the stages that actually ran in it.
        """
        deltas = {}
        for name, total in self.timings().items():
            delta = total - snapshot.get(name, 0.0)
            if delta > 0.0:
                deltas[name] = delta
        return deltas
