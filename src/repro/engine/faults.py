"""Deterministic fault injection for the execution stack.

R-Opus is a *performability* framework — Section VI plans capacity for
the case where a node dies mid-operation — so its own pipeline must
survive the same class of events. This module makes every recovery path
in :mod:`repro.engine.resilience` exercisable on demand and, crucially,
*reproducibly*: a :class:`FaultPlan` decides ahead of time exactly which
occurrences of which fault sites fire, derived from a seed through
:mod:`repro.util.rng` (never wall-clock randomness, so the ROP002
invariant holds and a chaos run replays bit-identically).

Model
-----
Each fault kind has a *site* in the execution stack and a driver-side
occurrence counter (:class:`FaultClock`). Every time execution passes a
site — one work-unit invocation, one broadcast publish, one checkpoint
write — the site's counter advances by one, and the plan is consulted:
``occurrence in plan.occurrences(kind)`` decides whether the fault
fires. Retried work units consume *fresh* occurrence numbers, so a
fault fires for its scheduled occurrence and the retry proceeds clean —
exactly the transient-failure shape the resilience layer is built for.
A fault that should defeat every retry is expressed by scheduling a
contiguous run of occurrences.

The plan is plain data (picklable, hashable) so the parallel executor
can ship each work unit's fault decisions to the worker that runs it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Mapping

from repro.exceptions import ROpusError
from repro.units import Probability
from repro.util.floats import is_zero
from repro.util.rng import SeedSequenceFactory


class FaultKind(Enum):
    """The injectable fault classes and the site each one strikes."""

    #: A worker process dies mid-task (``SIGKILL`` semantics). Site:
    #: one occurrence per work-unit invocation.
    WORKER_CRASH = "worker_crash"
    #: A worker wedges and stops making progress. Site: per invocation.
    WORKER_HANG = "worker_hang"
    #: A worker returns garbage instead of its result. Site: per
    #: invocation.
    CORRUPT_RESULT = "corrupt_result"
    #: Publishing the shared payload through shared memory fails.
    #: Site: one occurrence per broadcast attempt.
    BROADCAST_FAILURE = "broadcast_failure"
    #: A checkpoint write fails (disk full, volume gone). Site: one
    #: occurrence per checkpoint save.
    CHECKPOINT_WRITE_FAILURE = "checkpoint_write_failure"


#: Fault kinds whose occurrence counter is the work-unit invocation
#: counter (they share one site and therefore one clock).
WORKER_KINDS = (
    FaultKind.WORKER_CRASH,
    FaultKind.WORKER_HANG,
    FaultKind.CORRUPT_RESULT,
)


class InjectedFault(ROpusError):
    """Base class for failures raised by the injection harness."""


class InjectedWorkerCrash(InjectedFault):
    """Stands in for a SIGKILLed worker on backends without processes."""


class InjectedWorkerHang(InjectedFault):
    """Stands in for a wedged worker on backends without processes."""


class InjectedBroadcastFailure(InjectedFault):
    """The shared-memory broadcast path was made to fail."""


class InjectedCheckpointFailure(InjectedFault):
    """A checkpoint write was made to fail."""


@dataclass(frozen=True)
class CorruptedResult:
    """The garbage value a corrupt-result fault substitutes for a result.

    The resilience layer recognises instances of this marker in a map's
    results and treats the producing work unit as failed-retryable; any
    caller that bypasses the resilience layer will instead fail loudly
    downstream (the marker supports none of the result protocols).
    """

    occurrence: int


def seeded_occurrences(
    seed: int, label: str, rate: Probability, horizon: int
) -> frozenset[int]:
    """Deterministically choose which of ``horizon`` occurrences fire.

    Each occurrence fires independently with probability ``rate``; the
    draw stream is derived from ``(seed, label)`` through
    :class:`~repro.util.rng.SeedSequenceFactory`, so distinct fault
    kinds get independent—but individually reproducible—schedules.
    """
    if not 0.0 <= rate <= 1.0:
        raise ROpusError(f"fault rate must be in [0, 1], got {rate}")
    if horizon < 0:
        raise ROpusError(f"fault horizon must be >= 0, got {horizon}")
    if is_zero(rate) or horizon == 0:
        return frozenset()
    rng = SeedSequenceFactory(seed).generator("faults", label)
    draws = rng.random(horizon)
    return frozenset(int(index) for index in (draws < rate).nonzero()[0])


@dataclass(frozen=True)
class FaultPlan:
    """A complete, deterministic schedule of faults for one run.

    ``schedule`` maps each fault kind to the set of occurrence indices
    at which it fires. ``hang_seconds`` is how long an injected hang
    actually blocks on process backends (long enough to trip any sane
    task deadline, short enough that an orphaned sleeper exits soon).
    """

    schedule: Mapping[FaultKind, frozenset[int]] = field(default_factory=dict)
    hang_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.hang_seconds <= 0:
            raise ROpusError(
                f"hang_seconds must be > 0, got {self.hang_seconds}"
            )
        for kind, occurrences in self.schedule.items():
            if not isinstance(kind, FaultKind):
                raise ROpusError(f"unknown fault kind {kind!r}")
            if any(occurrence < 0 for occurrence in occurrences):
                raise ROpusError(
                    f"fault occurrences must be >= 0 for {kind.value}"
                )
        # Freeze the mapping shape so the plan is safely shareable.
        object.__setattr__(
            self,
            "schedule",
            {
                kind: frozenset(occurrences)
                for kind, occurrences in self.schedule.items()
            },
        )

    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan: no faults ever fire."""
        return cls()

    @classmethod
    def of(
        cls,
        *,
        hang_seconds: float = 5.0,
        **occurrences: Iterable[int],
    ) -> "FaultPlan":
        """Build a plan from explicit occurrence sets, keyed by kind value.

        >>> plan = FaultPlan.of(worker_crash=[0, 3], broadcast_failure=[0])
        >>> plan.fires(FaultKind.WORKER_CRASH, 3)
        True
        >>> plan.fires(FaultKind.WORKER_CRASH, 1)
        False
        """
        by_value = {kind.value: kind for kind in FaultKind}
        schedule: dict[FaultKind, frozenset[int]] = {}
        for name, indices in occurrences.items():
            if name not in by_value:
                raise ROpusError(f"unknown fault kind {name!r}")
            schedule[by_value[name]] = frozenset(int(i) for i in indices)
        return cls(schedule=schedule, hang_seconds=hang_seconds)

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        horizon: int,
        crash_rate: Probability = 0.0,
        hang_rate: Probability = 0.0,
        corrupt_rate: Probability = 0.0,
        broadcast_rate: Probability = 0.0,
        checkpoint_rate: Probability = 0.0,
        hang_seconds: float = 5.0,
    ) -> "FaultPlan":
        """A reproducible random plan: each kind fires at its own rate.

        ``horizon`` bounds the occurrence indices considered per kind;
        occurrences past the horizon never fire. The same ``seed``
        always produces the same plan.
        """
        rates = {
            FaultKind.WORKER_CRASH: crash_rate,
            FaultKind.WORKER_HANG: hang_rate,
            FaultKind.CORRUPT_RESULT: corrupt_rate,
            FaultKind.BROADCAST_FAILURE: broadcast_rate,
            FaultKind.CHECKPOINT_WRITE_FAILURE: checkpoint_rate,
        }
        schedule = {
            kind: seeded_occurrences(seed, kind.value, rate, horizon)
            for kind, rate in rates.items()
            if rate > 0.0
        }
        return cls(schedule=schedule, hang_seconds=hang_seconds)

    # ------------------------------------------------------------------
    def occurrences(self, kind: FaultKind) -> frozenset[int]:
        return self.schedule.get(kind, frozenset())

    def fires(self, kind: FaultKind, occurrence: int) -> bool:
        """Whether ``kind`` fires at the given site occurrence."""
        return occurrence in self.occurrences(kind)

    @property
    def empty(self) -> bool:
        return not any(self.schedule.values())

    def worker_faults_beyond(self, occurrence: int) -> bool:
        """Whether any worker-site fault is scheduled at or past ``occurrence``.

        Lets the resilience layer skip the item-tagging overhead once
        the schedule is exhausted.
        """
        return any(
            any(index >= occurrence for index in self.occurrences(kind))
            for kind in WORKER_KINDS
        )


class FaultClock:
    """Driver-side occurrence counters, one per fault site.

    The clock is what makes injection deterministic under retries and
    arbitrary chunking: occurrence numbers are assigned in the driver,
    in submission order, before work fans out — which worker executes an
    invocation never changes which faults it suffers.
    """

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}

    def take(self, site: str, count: int = 1) -> range:
        """Consume ``count`` occurrence numbers at ``site``."""
        start = self._counts.get(site, 0)
        self._counts[site] = start + count
        return range(start, start + count)

    def peek(self, site: str) -> int:
        """The next occurrence number ``site`` will hand out."""
        return self._counts.get(site, 0)


__all__ = [
    "CorruptedResult",
    "FaultClock",
    "FaultKind",
    "FaultPlan",
    "InjectedBroadcastFailure",
    "InjectedCheckpointFailure",
    "InjectedFault",
    "InjectedWorkerCrash",
    "InjectedWorkerHang",
    "WORKER_KINDS",
    "seeded_occurrences",
]
