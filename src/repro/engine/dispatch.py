"""Engine-level work dispatch helpers.

Chunking policy is a property of the *executor*, not of any one
algorithm: every fan-out stage that batches independent work units
(GA generation evaluation, shard-wave planning) wants the same shape —
one contiguous, near-equal chunk per unit of session parallelism, so
each worker runs a single batched solve over its whole share.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

ItemT = TypeVar("ItemT")


def split_chunks(
    items: Sequence[ItemT], n_chunks: int
) -> list[tuple[ItemT, ...]]:
    """Split work items into ``n_chunks`` contiguous, near-equal chunks.

    Rows are independent, so chunking only affects which worker solves
    which item — never the results. Chunk sizes differ by at most one,
    and input order is preserved across the concatenated chunks.
    """
    n_chunks = max(1, min(n_chunks, len(items)))
    base, extra = divmod(len(items), n_chunks)
    chunks: list[tuple[ItemT, ...]] = []
    start = 0
    for chunk_index in range(n_chunks):
        size = base + (1 if chunk_index < extra else 0)
        chunks.append(tuple(items[start : start + size]))
        start += size
    return chunks


__all__ = ["split_chunks"]
