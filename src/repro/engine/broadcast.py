"""Zero-copy broadcast of large array payloads to worker processes.

The parallel executor broadcasts one immutable *shared payload* per
session (for placement work: the stacked per-workload cos1/cos2
allocation matrices, by far the largest state in the pipeline). The
default transport pickles the payload into every worker through the pool
initializer — one full copy per worker, serialised through a pipe.

This module publishes the payload's ndarrays through POSIX shared memory
instead (:mod:`multiprocessing.shared_memory`): the driver copies each
array once into a single segment, workers receive only a tiny picklable
:class:`SharedMemoryHandle` and map the segment, rebuilding *read-only*
ndarray views over the shared buffer. N workers then share one physical
copy with no serialisation on the critical path.

How it composes:

* :func:`publish` walks the payload (dataclasses, recursively), swaps
  every ndarray for an index slot, copies the arrays into one fresh
  segment, and returns the handle plus the driver-side segment to keep
  alive; the caller (the parallel session) unlinks the segment on close.
* :func:`resolve` is its worker-side inverse, called once per process by
  the pool initializer. Attached segments are cached per process and the
  restored views are marked non-writeable, so a worker that mutates the
  "shared" payload faults immediately instead of corrupting siblings
  (the same invariant the ROP007 lint rule enforces statically).

The pickle fallback is always preserved — :func:`publish` returns the
payload unchanged (and ``shared_bytes == 0``) when there is nothing to
gain or shared memory cannot be used:

* the payload is ``None``, not a dataclass, or contains no ndarrays
  (e.g. the failure sweep's pool/config payload before an evaluator
  payload is nested in it);
* the platform cannot allocate a segment (``/dev/shm`` missing or
  full) — the ``OSError`` is swallowed and the session degrades to the
  exact pre-existing pickle path;
* an array-stripped copy of the payload cannot be constructed (a frozen
  dataclass whose ``__post_init__`` validates the array fields).
"""

from __future__ import annotations

import atexit
import dataclasses
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Optional

import numpy as np

__all__ = ["SharedMemoryHandle", "publish", "release", "resolve"]


# Driver-side segments published and not yet released, by segment name.
# POSIX shared memory outlives the creating process: a segment whose
# session never ran close() (worker crash unwound the stack, the driver
# was interrupted mid-map) would otherwise survive in /dev/shm until
# reboot. Every publish registers here; release() (the session close
# path and the GC finalizer) unregisters; the atexit hook sweeps
# whatever is left when the interpreter exits.
_PUBLISHED: dict[str, shared_memory.SharedMemory] = {}


def release(name: str) -> None:
    """Close and unlink a published segment; idempotent by name.

    Unlinking while workers are still attached is safe — the kernel
    keeps the segment alive until the last mapping closes; unlinking
    just removes the name so nothing leaks.
    """
    segment = _PUBLISHED.pop(name, None)
    if segment is None:
        return
    try:
        segment.close()
    except OSError:  # pragma: no cover - buffer already gone
        pass
    try:
        segment.unlink()
    except OSError:  # pragma: no cover - already unlinked externally
        pass


def _release_all_published() -> None:
    """Atexit sweep: unlink every segment an aborted run left behind."""
    for name in list(_PUBLISHED):
        release(name)


atexit.register(_release_all_published)


@dataclass(frozen=True)
class _ArraySlot:
    """Placeholder for the ``index``-th array stripped out of a payload."""

    index: int


@dataclass(frozen=True)
class SharedMemoryHandle:
    """The small picklable stand-in shipped to workers.

    ``template`` is the original payload with every ndarray replaced by
    an :class:`_ArraySlot`; ``specs`` locates each array inside the
    shared segment as ``(byte offset, shape, dtype string)``.
    """

    segment_name: str
    template: Any
    specs: tuple[tuple[int, tuple[int, ...], str], ...]


def _walk(obj: Any, visit: Any) -> Any:
    """Rebuild ``obj`` with ``visit`` applied to every ndarray leaf.

    Recurses through dataclass fields only — payloads are frozen
    dataclasses by convention (the executor requires picklable,
    immutable shared state) — and returns ``obj`` itself when nothing
    underneath changed, so non-array payloads pass through untouched.
    """
    if isinstance(obj, (np.ndarray, _ArraySlot)):
        return visit(obj)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        changes = {}
        for field in dataclasses.fields(obj):
            value = getattr(obj, field.name)
            replaced = _walk(value, visit)
            if replaced is not value:
                changes[field.name] = replaced
        return dataclasses.replace(obj, **changes) if changes else obj
    return obj


def publish(
    payload: Any,
) -> tuple[Any, Optional[shared_memory.SharedMemory], int]:
    """Move a payload's arrays into shared memory, if worthwhile.

    Returns ``(what to broadcast, driver-side segment or None, bytes
    placed in shared memory)``. The caller owns the returned segment:
    it must stay referenced while workers may attach and be
    ``close()``d + ``unlink()``ed when the session ends. On the pickle
    fallback the original payload comes back verbatim with no segment.
    """
    arrays: list[np.ndarray] = []

    def strip(leaf: Any) -> Any:
        arrays.append(np.ascontiguousarray(leaf))
        return _ArraySlot(len(arrays) - 1)

    try:
        template = _walk(payload, strip)
    except (TypeError, ValueError):
        return payload, None, 0
    total = sum(array.nbytes for array in arrays)
    if not arrays or total == 0:
        return payload, None, 0
    try:
        segment = shared_memory.SharedMemory(create=True, size=total)
    except OSError:
        return payload, None, 0
    _PUBLISHED[segment.name] = segment
    specs: list[tuple[int, tuple[int, ...], str]] = []
    offset = 0
    for array in arrays:
        view = np.ndarray(
            array.shape, dtype=array.dtype, buffer=segment.buf, offset=offset
        )
        view[...] = array
        specs.append((offset, array.shape, array.dtype.str))
        offset += array.nbytes
    handle = SharedMemoryHandle(
        segment_name=segment.name, template=template, specs=tuple(specs)
    )
    return handle, segment, total


# Segments this process has attached to, kept referenced so the mapped
# buffers outlive resolve() (the rebuilt views borrow their memory).
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment without registering it for cleanup.

    ``SharedMemory(name=...)`` registers the segment with the resource
    tracker, which would unlink it when the first tracked process exits
    — destroying it under the driver and the sibling workers (with
    fork-started pools the tracker is even *shared* with the driver, so
    a worker-side unregister would clobber the driver's own
    registration). Lifetime belongs to the publishing driver alone, so
    attachment suppresses registration entirely. (Python 3.13 exposes
    ``track=False`` for exactly this; this keeps 3.10–3.12 working.)
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original  # type: ignore[assignment]


def resolve(shared: Any) -> Any:
    """Worker-side inverse of :func:`publish`.

    Non-handle payloads (the pickle fallback, serial sessions) pass
    through unchanged. For a handle, the segment is attached once per
    process and the payload is rebuilt with read-only ndarray views over
    the shared buffer — zero copies.
    """
    if not isinstance(shared, SharedMemoryHandle):
        return shared
    segment = _ATTACHED.get(shared.segment_name)
    if segment is None:
        segment = _attach(shared.segment_name)
        _ATTACHED[shared.segment_name] = segment
    buffer = segment.buf

    def restore(slot: Any) -> Any:
        offset, shape, dtype = shared.specs[slot.index]
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=buffer, offset=offset)
        view.flags.writeable = False
        return view

    return _walk(shared.template, restore)
