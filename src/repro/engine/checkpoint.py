"""Journaling checkpoint store: atomic write-then-rename JSON documents.

Long-running planning stages (the genetic search's generations, the
failure sweep's what-if cases, the consolidation pass) persist their
progress through a :class:`Checkpointer` so a killed run resumes
bit-identically instead of starting over. The store is deliberately
boring:

* one JSON document per key, written to a temp file in the same
  directory and ``os.replace``d into place — a ``kill -9`` mid-write
  leaves either the previous complete document or a stray temp file,
  never a torn checkpoint;
* loads treat *any* malformed document as absent (the stage recomputes
  that step; correctness never depends on a checkpoint being present);
* saves degrade instead of raising — a full disk (or an injected
  :class:`~repro.engine.faults.InjectedCheckpointFailure`) costs
  resumability, not the run. Failures are counted on the attached
  instrumentation as ``checkpoint.write_failures``.

Keys are hierarchical (``"failure/web+db"``); path separators and other
filesystem-hostile characters are escaped into the flat filename, so a
key never escapes the checkpoint directory.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Callable, Optional

from repro.engine.faults import InjectedFault
from repro.engine.instrumentation import Instrumentation
from repro.exceptions import ConfigurationError

_SUFFIX = ".ckpt.json"
_TMP_SUFFIX = ".ckpt.tmp"


def _escape_key(key: str) -> str:
    """Escape a checkpoint key into one safe flat filename."""
    if not key:
        raise ConfigurationError("checkpoint key must be non-empty")
    out: list[str] = []
    for char in key:
        if char.isalnum() or char in "-_.+":
            out.append(char)
        elif char == "/":
            out.append("__")
        else:
            out.append(f"%{ord(char):02x}")
    return "".join(out)


class Checkpointer:
    """Atomic per-key JSON persistence for resumable pipeline stages."""

    def __init__(
        self,
        directory: os.PathLike[str] | str,
        *,
        instrumentation: Optional[Instrumentation] = None,
        fault_hook: Optional[Callable[[], None]] = None,
    ):
        """``fault_hook`` runs before every write; the fault-injection
        harness uses it to make saves fail deterministically."""
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.instrumentation = instrumentation
        self.fault_hook = fault_hook

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.directory / (_escape_key(key) + _SUFFIX)

    def save(self, key: str, payload: dict[str, Any]) -> bool:
        """Persist ``payload`` under ``key``; returns whether it stuck.

        The write is journaling: the document lands in a temp file
        first and is renamed over the previous version atomically.
        Failures (I/O errors, injected faults) are swallowed after
        counting — a lost checkpoint only costs resume coverage.
        """
        path = self._path(key)
        tmp = path.with_name(_escape_key(key) + _TMP_SUFFIX)
        try:
            if self.fault_hook is not None:
                self.fault_hook()
            document = json.dumps({"key": key, "payload": payload})
            with open(tmp, "w") as handle:
                handle.write(document)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except (OSError, TypeError, ValueError, InjectedFault) as error:
            self._count("checkpoint.write_failures")
            self._event("checkpoint.write_failed", key=key, error=repr(error))
            try:
                tmp.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - best-effort cleanup
                self._count("checkpoint.tmp_cleanup_failures")
            return False
        self._count("checkpoint.writes")
        return True

    def load(self, key: str) -> Optional[dict[str, Any]]:
        """The payload stored under ``key``, or ``None``.

        Missing, truncated, or otherwise malformed documents all read
        as absent: resume never trusts a checkpoint it cannot fully
        parse, it just recomputes the step.
        """
        try:
            text = self._path(key).read_text()
        except OSError:
            return None
        try:
            document = json.loads(text)
            payload = document["payload"]
        except (ValueError, KeyError, TypeError):
            self._count("checkpoint.corrupt_reads")
            return None
        if not isinstance(payload, dict):
            self._count("checkpoint.corrupt_reads")
            return None
        self._count("checkpoint.reads")
        return payload

    def exists(self, key: str) -> bool:
        return self._path(key).exists()

    def delete(self, key: str) -> None:
        try:
            self._path(key).unlink(missing_ok=True)
        except OSError:  # pragma: no cover - best-effort cleanup
            self._count("checkpoint.delete_failures")

    def keys(self) -> list[str]:
        """Escaped key names currently stored (diagnostic use)."""
        return sorted(
            entry.name[: -len(_SUFFIX)]
            for entry in self.directory.glob(f"*{_SUFFIX}")
        )

    # ------------------------------------------------------------------
    def _count(self, name: str, increment: float = 1) -> None:
        if self.instrumentation is not None:
            self.instrumentation.count(name, increment)

    def _event(self, name: str, **fields: object) -> None:
        if self.instrumentation is not None:
            self.instrumentation.event(name, **fields)


__all__ = ["Checkpointer"]
