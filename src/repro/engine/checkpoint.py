"""Journaling checkpoint store: atomic write-then-rename JSON documents.

Long-running planning stages (the genetic search's generations, the
failure sweep's what-if cases, the consolidation pass) persist their
progress through a :class:`Checkpointer` so a killed run resumes
bit-identically instead of starting over. The store is deliberately
boring:

* one JSON document per key, written to a temp file in the same
  directory and ``os.replace``d into place — a ``kill -9`` mid-write
  leaves either the previous complete document or a stray temp file,
  never a torn checkpoint;
* loads treat *any* malformed document as absent (the stage recomputes
  that step; correctness never depends on a checkpoint being present);
* saves degrade instead of raising — a full disk (or an injected
  :class:`~repro.engine.faults.InjectedCheckpointFailure`) costs
  resumability, not the run. Failures are counted on the attached
  instrumentation as ``checkpoint.write_failures``.

Keys are hierarchical (``"failure/web+db"``); each key maps to a flat
filename built from a readable sanitised prefix plus a digest of the
raw key, so distinct keys never share a file and no key escapes the
checkpoint directory. The raw key stored inside every document is
verified on load.

A store can additionally carry an input ``fingerprint`` — a digest of
the planning inputs the checkpoints were computed from. Every save
embeds it and every load rejects documents whose fingerprint differs,
so re-running against changed traces, seeds, or configuration can never
silently resume another problem's state.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Callable, Optional

from repro.engine.faults import InjectedFault
from repro.engine.instrumentation import Instrumentation
from repro.exceptions import ConfigurationError

_SUFFIX = ".ckpt.json"
_TMP_SUFFIX = ".ckpt.tmp"
_READABLE_PREFIX_CHARS = 64


def _escape_key(key: str) -> str:
    """Map a checkpoint key to one safe, collision-free flat filename.

    The sanitised prefix keeps the directory human-readable; the
    appended digest of the raw key is what guarantees distinct keys
    land in distinct files (``"a/b"`` and ``"a_b"`` sanitise alike but
    digest apart).
    """
    if not key:
        raise ConfigurationError("checkpoint key must be non-empty")
    readable = "".join(
        char if char.isalnum() or char in "-_.+" else "_" for char in key
    )
    digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]
    return f"{readable[:_READABLE_PREFIX_CHARS]}.{digest}"


class Checkpointer:
    """Atomic per-key JSON persistence for resumable pipeline stages."""

    def __init__(
        self,
        directory: os.PathLike[str] | str,
        *,
        instrumentation: Optional[Instrumentation] = None,
        fault_hook: Optional[Callable[[], None]] = None,
        fingerprint: Optional[str] = None,
    ):
        """``fault_hook`` runs before every write; the fault-injection
        harness uses it to make saves fail deterministically.

        ``fingerprint`` identifies the inputs the checkpoints describe
        (see the module docstring); owners that know their inputs (the
        :class:`~repro.core.framework.ROpus` facade) set it before
        planning so stale documents read as absent. ``None`` disables
        the check.
        """
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.instrumentation = instrumentation
        self.fault_hook = fault_hook
        self.fingerprint = fingerprint

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.directory / (_escape_key(key) + _SUFFIX)

    def save(self, key: str, payload: dict[str, Any]) -> bool:
        """Persist ``payload`` under ``key``; returns whether it stuck.

        The write is journaling: the document lands in a temp file
        first and is renamed over the previous version atomically.
        Failures (I/O errors, injected faults) are swallowed after
        counting — a lost checkpoint only costs resume coverage.
        """
        path = self._path(key)
        tmp = path.with_name(_escape_key(key) + _TMP_SUFFIX)
        try:
            if self.fault_hook is not None:
                self.fault_hook()
            document = json.dumps(
                {
                    "key": key,
                    "fingerprint": self.fingerprint,
                    "payload": payload,
                }
            )
            with open(tmp, "w") as handle:
                handle.write(document)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except (OSError, TypeError, ValueError, InjectedFault) as error:
            self._count("checkpoint.write_failures")
            self._event("checkpoint.write_failed", key=key, error=repr(error))
            return False
        finally:
            # After a successful rename the temp file is gone and the
            # unlink is a no-op; on *any* failure — including the
            # exceptions the handler above does not swallow, like a
            # KeyboardInterrupt mid-write — it removes the stray file.
            try:
                tmp.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - best-effort cleanup
                self._count("checkpoint.tmp_cleanup_failures")
        self._count("checkpoint.writes")
        return True

    def load(self, key: str) -> Optional[dict[str, Any]]:
        """The payload stored under ``key``, or ``None``.

        Missing, truncated, or otherwise malformed documents all read
        as absent — as do documents whose stored raw key differs from
        ``key`` (a filename collision from an older escaping scheme) or
        whose fingerprint differs from this store's (checkpoints from a
        different planning problem). Resume never trusts a checkpoint
        it cannot fully verify, it just recomputes the step.
        """
        try:
            text = self._path(key).read_text()
        except OSError:
            return None
        try:
            document = json.loads(text)
            payload = document["payload"]
        except (ValueError, KeyError, TypeError):
            self._count("checkpoint.corrupt_reads")
            return None
        if not isinstance(payload, dict):
            self._count("checkpoint.corrupt_reads")
            return None
        if document.get("key") != key:
            self._count("checkpoint.key_mismatches")
            self._event(
                "checkpoint.key_mismatch",
                key=key,
                stored=document.get("key"),
            )
            return None
        if (
            self.fingerprint is not None
            and document.get("fingerprint") != self.fingerprint
        ):
            self._count("checkpoint.fingerprint_mismatches")
            self._event("checkpoint.fingerprint_mismatch", key=key)
            return None
        self._count("checkpoint.reads")
        return payload

    def exists(self, key: str) -> bool:
        return self._path(key).exists()

    def delete(self, key: str) -> None:
        try:
            self._path(key).unlink(missing_ok=True)
        except OSError:  # pragma: no cover - best-effort cleanup
            self._count("checkpoint.delete_failures")

    def keys(self) -> list[str]:
        """Raw keys currently stored (diagnostic use).

        Keys are read back out of the documents themselves (filenames
        are digests); unreadable documents are skipped.
        """
        keys: list[str] = []
        for entry in self.directory.glob(f"*{_SUFFIX}"):
            try:
                stored = json.loads(entry.read_text()).get("key")
            except (OSError, ValueError, AttributeError):
                continue
            if isinstance(stored, str):
                keys.append(stored)
        return sorted(keys)

    def clear(self) -> None:
        """Delete every stored document (end-of-run rotation).

        Called after a planning run completes successfully: its
        checkpoints have served their purpose, and leaving them behind
        would let a later run against different inputs find documents
        it must then reject (or, without a fingerprint, wrongly trust).
        """
        for pattern in (f"*{_SUFFIX}", f"*{_TMP_SUFFIX}"):
            for entry in self.directory.glob(pattern):
                try:
                    entry.unlink(missing_ok=True)
                except OSError:  # pragma: no cover - best-effort cleanup
                    self._count("checkpoint.delete_failures")
        self._count("checkpoint.clears")

    # ------------------------------------------------------------------
    def _count(self, name: str, increment: float = 1) -> None:
        if self.instrumentation is not None:
            self.instrumentation.count(name, increment)

    def _event(self, name: str, **fields: object) -> None:
        if self.instrumentation is not None:
            self.instrumentation.event(name, **fields)


__all__ = ["Checkpointer"]
