"""Pluggable execution engine: fan-out backends plus instrumentation.

The engine subsystem decouples *what* the pipeline computes from *how*
the embarrassingly parallel parts run and *what is measured* while they
do. See :class:`ExecutionEngine` for the object threaded through the
framework, :class:`SerialExecutor`/:class:`ParallelExecutor` for the
backends, and :class:`Instrumentation` for stage timers, counters, and
the structured event log.
"""

from repro.engine.broadcast import SharedMemoryHandle
from repro.engine.checkpoint import Checkpointer
from repro.engine.core import ExecutionEngine
from repro.engine.dispatch import split_chunks
from repro.engine.executor import (
    Executor,
    ExecutorSession,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
)
from repro.engine.faults import FaultClock, FaultKind, FaultPlan
from repro.engine.instrumentation import Event, Instrumentation, StageStats
from repro.engine.resilience import (
    ResilienceConfig,
    ResilientExecutor,
    make_resilient_executor,
)

__all__ = [
    "Checkpointer",
    "Event",
    "ExecutionEngine",
    "Executor",
    "ExecutorSession",
    "FaultClock",
    "FaultKind",
    "FaultPlan",
    "Instrumentation",
    "ParallelExecutor",
    "ResilienceConfig",
    "ResilientExecutor",
    "SerialExecutor",
    "SharedMemoryHandle",
    "StageStats",
    "make_executor",
    "make_resilient_executor",
    "split_chunks",
]
