"""Serialization for traces and ensembles.

Two formats are supported:

* **CSV** — one column per workload, one row per observation, with a
  two-line header carrying the calendar (weeks, slot_minutes). Convenient
  for inspecting traces in a spreadsheet and for importing real
  measurement data.
* **JSON** — a single document embedding the calendar, attribute and all
  series. Used by the examples to cache generated ensembles.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Sequence, Union

from repro.exceptions import TraceError
from repro.traces.calendar import TraceCalendar
from repro.traces.trace import DemandTrace

PathLike = Union[str, Path]

_CSV_MAGIC = "# ropus-traces"


def save_traces_csv(traces: Sequence[DemandTrace], path: PathLike) -> None:
    """Write an ensemble of traces sharing one calendar to a CSV file."""
    if not traces:
        raise TraceError("cannot save an empty collection of traces")
    calendar = traces[0].calendar
    attribute = traces[0].attribute
    for trace in traces:
        calendar.require_compatible(trace.calendar)
        if trace.attribute != attribute:
            raise TraceError(
                f"trace {trace.name!r} attribute {trace.attribute!r} differs "
                f"from {attribute!r}"
            )
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [_CSV_MAGIC, calendar.weeks, calendar.slot_minutes, attribute]
        )
        writer.writerow([trace.name for trace in traces])
        columns = [trace.values for trace in traces]
        for row_index in range(calendar.n_observations):
            writer.writerow(
                [repr(float(column[row_index])) for column in columns]
            )


def load_traces_csv(path: PathLike) -> list[DemandTrace]:
    """Read back an ensemble written by :func:`save_traces_csv`."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            magic_row = next(reader)
            names = next(reader)
        except StopIteration as exc:
            raise TraceError(f"{path}: truncated trace CSV") from exc
        if not magic_row or magic_row[0] != _CSV_MAGIC:
            raise TraceError(f"{path}: not an R-Opus trace CSV")
        try:
            weeks = int(magic_row[1])
            slot_minutes = int(magic_row[2])
            attribute = magic_row[3]
        except (IndexError, ValueError) as exc:
            raise TraceError(f"{path}: malformed trace CSV header") from exc
        calendar = TraceCalendar(weeks=weeks, slot_minutes=slot_minutes)
        columns: list[list[float]] = [[] for _ in names]
        for row in reader:
            if len(row) != len(names):
                raise TraceError(
                    f"{path}: row has {len(row)} cells, expected {len(names)}"
                )
            for column, cell in zip(columns, row):
                column.append(float(cell))
    return [
        DemandTrace(name, column, calendar, attribute)
        for name, column in zip(names, columns)
    ]


def traces_to_json(traces: Sequence[DemandTrace]) -> str:
    """Serialize an ensemble of traces to a JSON string."""
    if not traces:
        raise TraceError("cannot serialize an empty collection of traces")
    calendar = traces[0].calendar
    for trace in traces:
        calendar.require_compatible(trace.calendar)
    document = {
        "format": "ropus-traces-v1",
        "calendar": {"weeks": calendar.weeks, "slot_minutes": calendar.slot_minutes},
        "traces": [
            {
                "name": trace.name,
                "attribute": trace.attribute,
                "values": [float(value) for value in trace.values],
            }
            for trace in traces
        ],
    }
    return json.dumps(document)


def traces_from_json(text: str) -> list[DemandTrace]:
    """Deserialize an ensemble produced by :func:`traces_to_json`."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TraceError(f"invalid trace JSON: {exc}") from exc
    if document.get("format") != "ropus-traces-v1":
        raise TraceError("not an R-Opus trace JSON document")
    calendar_spec = document["calendar"]
    calendar = TraceCalendar(
        weeks=int(calendar_spec["weeks"]),
        slot_minutes=int(calendar_spec["slot_minutes"]),
    )
    return [
        DemandTrace(
            entry["name"],
            entry["values"],
            calendar,
            entry.get("attribute", "cpu"),
        )
        for entry in document["traces"]
    ]


def save_traces_json(traces: Sequence[DemandTrace], path: PathLike) -> None:
    Path(path).write_text(traces_to_json(traces))


def load_traces_json(path: PathLike) -> list[DemandTrace]:
    return traces_from_json(Path(path).read_text())
