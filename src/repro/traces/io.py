"""Serialization for traces and ensembles.

Two formats are supported:

* **CSV** — one column per workload, one row per observation, with a
  two-line header carrying the calendar (weeks, slot_minutes). Convenient
  for inspecting traces in a spreadsheet and for importing real
  measurement data.
* **JSON** — a single document embedding the calendar, attribute and all
  series. Used by the examples to cache generated ensembles.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Sequence, Union

import numpy as np

from repro.exceptions import TraceError
from repro.traces.calendar import TraceCalendar
from repro.traces.trace import DemandTrace

PathLike = Union[str, Path]

_CSV_MAGIC = "# ropus-traces"


def save_traces_csv(traces: Sequence[DemandTrace], path: PathLike) -> None:
    """Write an ensemble of traces sharing one calendar to a CSV file."""
    if not traces:
        raise TraceError("cannot save an empty collection of traces")
    calendar = traces[0].calendar
    attribute = traces[0].attribute
    for trace in traces:
        calendar.require_compatible(trace.calendar)
        if trace.attribute != attribute:
            raise TraceError(
                f"trace {trace.name!r} attribute {trace.attribute!r} differs "
                f"from {attribute!r}"
            )
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [_CSV_MAGIC, calendar.weeks, calendar.slot_minutes, attribute]
        )
        writer.writerow([trace.name for trace in traces])
        columns = [trace.values for trace in traces]
        for row_index in range(calendar.n_observations):
            writer.writerow(
                [repr(float(column[row_index])) for column in columns]
            )


def load_traces_csv(path: PathLike) -> list[DemandTrace]:
    """Read back an ensemble written by :func:`save_traces_csv`."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            magic_row = next(reader)
            names = next(reader)
        except StopIteration as exc:
            raise TraceError(f"{path}: truncated trace CSV") from exc
        if not magic_row or magic_row[0] != _CSV_MAGIC:
            raise TraceError(f"{path}: not an R-Opus trace CSV")
        try:
            weeks = int(magic_row[1])
            slot_minutes = int(magic_row[2])
            attribute = magic_row[3]
        except (IndexError, ValueError) as exc:
            raise TraceError(f"{path}: malformed trace CSV header") from exc
        calendar = TraceCalendar(weeks=weeks, slot_minutes=slot_minutes)
        columns: list[list[float]] = [[] for _ in names]
        for row in reader:
            if len(row) != len(names):
                raise TraceError(
                    f"{path}: row has {len(row)} cells, expected {len(names)}"
                )
            for column, cell in zip(columns, row):
                column.append(float(cell))
    return [
        DemandTrace(name, column, calendar, attribute)
        for name, column in zip(names, columns)
    ]


def load_traces_csv_repaired(
    path: PathLike,
) -> tuple[list[DemandTrace], dict[str, "TraceRepairReport"]]:
    """Load a trace CSV, quarantining bad rows instead of raising.

    Real exports from monitoring systems are messy where the strict
    loader is exacting: cells that fail to parse, NaN/negative
    readings, rows out of order. This loader admits the ensemble anyway
    and reports what it repaired:

    * unparsable / non-finite cells are carried forward from the last
      finite observation (:class:`RepairKind.NON_FINITE`);
    * negative demand is clamped to zero (:class:`RepairKind.NEGATIVE`);
    * an optional leading ``slot`` column (not emitted by
      :func:`save_traces_csv`, but common in timestamped exports) lets
      rows arrive in any order — each row lands at its stated slot,
      later duplicates win, and every inversion in file order counts as
      :class:`RepairKind.OUT_OF_ORDER`;
    * rows with the wrong cell count or an unusable slot index count as
      :class:`RepairKind.MALFORMED_ROW`; their missing cells read as
      non-finite and are repaired like any other.

    The file-level header must still be intact — with the calendar
    unreadable there is nothing sound to repair toward. Returns the
    traces (each carrying its repair total as
    :attr:`DemandTrace.repairs`) plus the per-workload reports.
    """
    from repro.traces.validation import (
        RepairKind,
        TraceRepairReport,
        quarantine_series,
    )

    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            magic_row = next(reader)
            names = next(reader)
        except StopIteration as exc:
            raise TraceError(f"{path}: truncated trace CSV") from exc
        if not magic_row or magic_row[0] != _CSV_MAGIC:
            raise TraceError(f"{path}: not an R-Opus trace CSV")
        try:
            weeks = int(magic_row[1])
            slot_minutes = int(magic_row[2])
            attribute = magic_row[3]
        except (IndexError, ValueError) as exc:
            raise TraceError(f"{path}: malformed trace CSV header") from exc
        calendar = TraceCalendar(weeks=weeks, slot_minutes=slot_minutes)
        has_slot_column = bool(names) and names[0] == "slot"
        workload_names = names[1:] if has_slot_column else names
        if not workload_names:
            raise TraceError(f"{path}: trace CSV names no workloads")
        n_slots = calendar.n_observations
        matrix = np.full((n_slots, len(workload_names)), np.nan)
        malformed_rows = 0
        out_of_order_rows = 0
        previous_slot = -1
        position = 0
        for row in reader:
            cells = row
            slot = position
            if has_slot_column:
                try:
                    slot = int(float(cells[0]))
                except (IndexError, ValueError):
                    malformed_rows += 1
                    position += 1
                    continue
                cells = cells[1:]
                if slot < previous_slot:
                    out_of_order_rows += 1
                previous_slot = slot
            if len(cells) != len(workload_names):
                malformed_rows += 1
                cells = (cells + [""] * len(workload_names))[
                    : len(workload_names)
                ]
            if not 0 <= slot < n_slots:
                malformed_rows += 1
                position += 1
                continue
            for column_index, cell in enumerate(cells):
                try:
                    matrix[slot, column_index] = float(cell)
                except ValueError:
                    # Stays NaN; quarantine_series repairs and counts it.
                    pass
            position += 1

    traces: list[DemandTrace] = []
    reports: dict[str, TraceRepairReport] = {}
    row_counts: dict[RepairKind, int] = {}
    if out_of_order_rows:
        row_counts[RepairKind.OUT_OF_ORDER] = out_of_order_rows
    if malformed_rows:
        row_counts[RepairKind.MALFORMED_ROW] = malformed_rows
    for column_index, name in enumerate(workload_names):
        repaired, counts = quarantine_series(matrix[:, column_index])
        counts.update(row_counts)
        report = TraceRepairReport(workload=name, counts=counts)
        reports[name] = report
        traces.append(
            DemandTrace(
                name, repaired, calendar, attribute, repairs=report.total
            )
        )
    return traces, reports


def traces_to_json(traces: Sequence[DemandTrace]) -> str:
    """Serialize an ensemble of traces to a JSON string."""
    if not traces:
        raise TraceError("cannot serialize an empty collection of traces")
    calendar = traces[0].calendar
    for trace in traces:
        calendar.require_compatible(trace.calendar)
    document = {
        "format": "ropus-traces-v1",
        "calendar": {"weeks": calendar.weeks, "slot_minutes": calendar.slot_minutes},
        "traces": [
            {
                "name": trace.name,
                "attribute": trace.attribute,
                "values": [float(value) for value in trace.values],
            }
            for trace in traces
        ],
    }
    return json.dumps(document)


def traces_from_json(text: str) -> list[DemandTrace]:
    """Deserialize an ensemble produced by :func:`traces_to_json`."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TraceError(f"invalid trace JSON: {exc}") from exc
    if document.get("format") != "ropus-traces-v1":
        raise TraceError("not an R-Opus trace JSON document")
    calendar_spec = document["calendar"]
    calendar = TraceCalendar(
        weeks=int(calendar_spec["weeks"]),
        slot_minutes=int(calendar_spec["slot_minutes"]),
    )
    return [
        DemandTrace(
            entry["name"],
            entry["values"],
            calendar,
            entry.get("attribute", "cpu"),
        )
        for entry in document["traces"]
    ]


def save_traces_json(traces: Sequence[DemandTrace], path: PathLike) -> None:
    Path(path).write_text(traces_to_json(traces))


def load_traces_json(path: PathLike) -> list[DemandTrace]:
    return traces_from_json(Path(path).read_text())
