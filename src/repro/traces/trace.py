"""Demand traces: observed resource demand per workload over time.

A :class:`DemandTrace` binds a named workload to a flat series of demand
observations on a :class:`~repro.traces.calendar.TraceCalendar`. Demand is
expressed in capacity units of one attribute (the paper's case study uses
CPUs; memory or I/O attributes use the same type with a different
``attribute`` tag).

Traces are immutable: all transformations return new instances. This keeps
the QoS translation pipeline referentially transparent — the same input
trace always produces the same allocation plan.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, Union

import numpy as np

from repro.exceptions import TraceError
from repro.traces.calendar import TraceCalendar

ArrayLike = Union[Sequence[float], np.ndarray]

CPU_ATTRIBUTE = "cpu"


class DemandTrace:
    """An immutable time series of demand observations for one workload.

    Parameters
    ----------
    name:
        Workload identifier, unique within an ensemble.
    values:
        Demand observations, one per calendar slot; all must be finite
        and non-negative.
    calendar:
        The grid the observations live on.
    attribute:
        Capacity attribute the demand refers to (default ``"cpu"``).
    repairs:
        How many observations ingest had to quarantine and repair to
        admit this series (see
        :func:`repro.traces.validation.quarantine_series`); zero for
        trusted in-process data. Diagnostic only — it does not
        participate in equality, and derived traces reset it.
    """

    __slots__ = ("name", "attribute", "calendar", "repairs", "_values")

    def __init__(
        self,
        name: str,
        values: ArrayLike,
        calendar: TraceCalendar,
        attribute: str = CPU_ATTRIBUTE,
        *,
        repairs: int = 0,
    ):
        array = np.asarray(values, dtype=float)
        if array.ndim != 1:
            raise TraceError(f"trace values must be 1-D, got shape {array.shape}")
        if array.shape[0] != calendar.n_observations:
            raise TraceError(
                f"trace {name!r} has {array.shape[0]} observations but the "
                f"calendar requires {calendar.n_observations}"
            )
        if not np.all(np.isfinite(array)):
            raise TraceError(f"trace {name!r} contains non-finite values")
        if np.any(array < 0):
            raise TraceError(f"trace {name!r} contains negative demand")
        if repairs < 0:
            raise TraceError(f"repairs must be >= 0, got {repairs}")
        array.flags.writeable = False
        self.name = name
        self.attribute = attribute
        self.calendar = calendar
        self.repairs = int(repairs)
        self._values = array

    @property
    def values(self) -> np.ndarray:
        """The read-only observation array (length ``calendar.n_observations``)."""
        return self._values

    def __len__(self) -> int:
        return self._values.shape[0]

    def __iter__(self) -> Iterable[float]:
        return iter(self._values)

    def __getitem__(self, index: int) -> float:
        return float(self._values[index])

    def __repr__(self) -> str:
        return (
            f"DemandTrace(name={self.name!r}, attribute={self.attribute!r}, "
            f"n={len(self)}, peak={self.peak():.3f})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DemandTrace):
            return NotImplemented
        return (
            self.name == other.name
            and self.attribute == other.attribute
            and self.calendar == other.calendar
            and np.array_equal(self._values, other._values)
        )

    def __hash__(self) -> int:
        return hash((self.name, self.attribute, self.calendar, self._values.tobytes()))

    # ------------------------------------------------------------------
    # Summary statistics
    # ------------------------------------------------------------------
    def peak(self) -> float:
        """``D_max``: the largest observed demand."""
        return float(self._values.max())

    def mean(self) -> float:
        return float(self._values.mean())

    def percentile(self, percentile: float, method: str = "linear") -> float:
        """``D_M%``: the ``percentile``-th percentile of demand.

        The default linear interpolation makes ``percentile(100)`` equal
        :meth:`peak` exactly. ``method="higher"`` returns the smallest
        observed value with at most ``100 - percentile`` percent of
        observations strictly above it — the conservative choice the
        ``M_degr`` relaxation needs so the degraded budget is never
        exceeded by an interpolation artifact.
        """
        if not 0 <= percentile <= 100:
            raise TraceError(f"percentile must be in [0, 100], got {percentile}")
        return float(np.percentile(self._values, percentile, method=method))

    def is_constant(self) -> bool:
        return bool(np.all(self._values == self._values[0]))

    # ------------------------------------------------------------------
    # Transformations (all return new traces)
    # ------------------------------------------------------------------
    def with_values(self, values: ArrayLike, name: str | None = None) -> "DemandTrace":
        """Return a trace on the same calendar with replaced values."""
        return DemandTrace(
            name if name is not None else self.name,
            values,
            self.calendar,
            self.attribute,
        )

    def scaled(self, factor: float) -> "DemandTrace":
        """Return a trace with every observation multiplied by ``factor``."""
        if factor < 0:
            raise TraceError(f"scale factor must be >= 0, got {factor}")
        return self.with_values(self._values * factor)

    def clipped(self, ceiling: float) -> "DemandTrace":
        """Return a trace with observations capped at ``ceiling``."""
        if ceiling < 0:
            raise TraceError(f"ceiling must be >= 0, got {ceiling}")
        return self.with_values(np.minimum(self._values, ceiling))

    def mapped(self, transform: Callable[[np.ndarray], np.ndarray]) -> "DemandTrace":
        """Return a trace with ``transform`` applied to the value array."""
        return self.with_values(transform(self._values.copy()))

    def renamed(self, name: str) -> "DemandTrace":
        return DemandTrace(name, self._values, self.calendar, self.attribute)
