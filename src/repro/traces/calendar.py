"""The observation grid shared by all traces in an analysis.

The paper characterises each workload with ``W`` weeks of observations,
``7`` days per week and ``T`` slots per day measured every ``m`` minutes
(Section IV). For 5-minute intervals ``T = 288``. The resource access
probability theta is computed *per slot of day, per week*, so the calendar
must be able to map between flat observation indices and
``(week, day, slot)`` coordinates cheaply in both directions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.exceptions import CalendarMismatchError, TraceError

MINUTES_PER_DAY = 24 * 60
DAYS_PER_WEEK = 7


@dataclass(frozen=True)
class SlotIndex:
    """Coordinates of one observation on the calendar grid."""

    week: int
    day: int
    slot: int


@dataclass(frozen=True)
class TraceCalendar:
    """A fixed-interval observation grid spanning whole weeks.

    Parameters
    ----------
    weeks:
        Number of whole weeks covered (``W`` in the paper). Must be >= 1.
    slot_minutes:
        Measurement interval in minutes (``m`` in the paper). Must divide
        a day evenly; the paper uses 5 minutes.

    >>> cal = TraceCalendar(weeks=4, slot_minutes=5)
    >>> cal.slots_per_day
    288
    >>> cal.n_observations
    8064
    """

    weeks: int
    slot_minutes: int = 5

    def __post_init__(self) -> None:
        if self.weeks < 1:
            raise TraceError(f"weeks must be >= 1, got {self.weeks}")
        if self.slot_minutes < 1:
            raise TraceError(f"slot_minutes must be >= 1, got {self.slot_minutes}")
        if MINUTES_PER_DAY % self.slot_minutes != 0:
            raise TraceError(
                f"slot_minutes must divide a day evenly, got {self.slot_minutes}"
            )

    @property
    def slots_per_day(self) -> int:
        """``T`` in the paper: observations per day."""
        return MINUTES_PER_DAY // self.slot_minutes

    @property
    def slots_per_week(self) -> int:
        return self.slots_per_day * DAYS_PER_WEEK

    @property
    def n_observations(self) -> int:
        """Total flat length of any trace on this calendar."""
        return self.weeks * self.slots_per_week

    def flat_index(self, index: SlotIndex) -> int:
        """Map ``(week, day, slot)`` coordinates to a flat array index."""
        self._check_coords(index)
        return (
            index.week * self.slots_per_week
            + index.day * self.slots_per_day
            + index.slot
        )

    def coordinates(self, flat: int) -> SlotIndex:
        """Map a flat array index back to ``(week, day, slot)`` coordinates."""
        if not 0 <= flat < self.n_observations:
            raise TraceError(
                f"flat index {flat} out of range [0, {self.n_observations})"
            )
        week, within_week = divmod(flat, self.slots_per_week)
        day, slot = divmod(within_week, self.slots_per_day)
        return SlotIndex(week=week, day=day, slot=slot)

    def iter_slots(self) -> Iterator[SlotIndex]:
        """Yield every observation coordinate in flat order."""
        for flat in range(self.n_observations):
            yield self.coordinates(flat)

    def slot_of_day_view(self, values: np.ndarray) -> np.ndarray:
        """Reshape a flat series to ``(weeks, days, slots_per_day)``.

        This is the shape theta measurement needs: axis 0 indexes weeks,
        axis 1 days-of-week, axis 2 the slot of day.
        """
        values = np.asarray(values)
        if values.shape != (self.n_observations,):
            raise CalendarMismatchError(
                f"series of length {values.shape} does not match calendar with "
                f"{self.n_observations} observations"
            )
        return values.reshape(self.weeks, DAYS_PER_WEEK, self.slots_per_day)

    def slots_for_duration(self, minutes: float) -> int:
        """Number of whole observation slots covering ``minutes``.

        Used to convert the paper's ``T_degr`` (e.g. 30 minutes) and the
        CoS deadline ``s`` (e.g. 60 minutes) into slot counts. A duration
        that is not a multiple of the slot interval is rounded down to the
        number of *complete* slots it contains, matching the paper's ``R``
        observations in ``T_degr`` minutes.
        """
        if minutes < 0:
            raise TraceError(f"duration must be >= 0 minutes, got {minutes}")
        return int(minutes // self.slot_minutes)

    def compatible_with(self, other: "TraceCalendar") -> bool:
        """True when two calendars describe the identical grid."""
        return (
            self.weeks == other.weeks and self.slot_minutes == other.slot_minutes
        )

    def require_compatible(self, other: "TraceCalendar") -> None:
        """Raise :class:`CalendarMismatchError` unless grids are identical."""
        if not self.compatible_with(other):
            raise CalendarMismatchError(
                f"calendar {self} is incompatible with {other}"
            )

    def _check_coords(self, index: SlotIndex) -> None:
        if not 0 <= index.week < self.weeks:
            raise TraceError(f"week {index.week} out of range [0, {self.weeks})")
        if not 0 <= index.day < DAYS_PER_WEEK:
            raise TraceError(f"day {index.day} out of range [0, {DAYS_PER_WEEK})")
        if not 0 <= index.slot < self.slots_per_day:
            raise TraceError(
                f"slot {index.slot} out of range [0, {self.slots_per_day})"
            )
