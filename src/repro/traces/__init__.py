"""Trace substrate: time-indexed demand and allocation series.

R-Opus is trace-driven: every decision (QoS translation, placement,
compliance measurement) consumes multi-week, fixed-interval observation
series. This package provides the calendar grid (:class:`TraceCalendar`),
the demand series (:class:`DemandTrace`), per-CoS allocation series
(:class:`AllocationTrace`, :class:`CoSAllocationPair`), analysis helpers
(:mod:`repro.traces.ops`) and serialization (:mod:`repro.traces.io`).
"""

from repro.traces.allocation import AllocationTrace, CoSAllocationPair
from repro.traces.calendar import SlotIndex, TraceCalendar
from repro.traces.ops import (
    aggregate_traces,
    contiguous_runs_above,
    longest_run_above,
    normalize_to_peak,
    percentile_profile,
    slice_weeks,
    trace_percentile,
)
from repro.traces.trace import DemandTrace
from repro.traces.validation import (
    IssueKind,
    RepairKind,
    TraceIssue,
    TraceQualityReport,
    TraceRepairReport,
    quarantine_series,
    validate_ensemble,
    validate_trace,
)

__all__ = [
    "AllocationTrace",
    "CoSAllocationPair",
    "DemandTrace",
    "SlotIndex",
    "TraceCalendar",
    "IssueKind",
    "RepairKind",
    "TraceIssue",
    "TraceQualityReport",
    "TraceRepairReport",
    "aggregate_traces",
    "quarantine_series",
    "contiguous_runs_above",
    "longest_run_above",
    "normalize_to_peak",
    "percentile_profile",
    "slice_weeks",
    "trace_percentile",
    "validate_ensemble",
    "validate_trace",
]
