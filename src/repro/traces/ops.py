"""Trace analysis primitives.

These are the low-level numeric operations the QoS translation and the
compliance metrics are built from: percentile profiles, contiguous-run
detection (for the ``T_degr`` time-limited degradation constraint), and
element-wise aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import CalendarMismatchError, TraceError
from repro.traces.trace import DemandTrace


@dataclass(frozen=True)
class Run:
    """A maximal contiguous stretch of indices ``[start, stop)``."""

    start: int
    stop: int

    @property
    def length(self) -> int:
        return self.stop - self.start

    def indices(self) -> np.ndarray:
        return np.arange(self.start, self.stop)


def contiguous_runs_above(values: np.ndarray, threshold: float) -> list[Run]:
    """Find maximal runs of consecutive values strictly above ``threshold``.

    Returns runs in order of appearance. An empty array yields no runs.

    >>> contiguous_runs_above(np.array([0, 2, 2, 0, 2]), 1)
    [Run(start=1, stop=3), Run(start=4, stop=5)]
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 1:
        raise TraceError(f"values must be 1-D, got shape {values.shape}")
    above = values > threshold
    if not above.any():
        return []
    # Transitions: +1 where a run starts, -1 one past where it ends.
    padded = np.concatenate(([False], above, [False]))
    deltas = np.diff(padded.astype(np.int8))
    starts = np.flatnonzero(deltas == 1)
    stops = np.flatnonzero(deltas == -1)
    return [Run(int(start), int(stop)) for start, stop in zip(starts, stops)]


def longest_run_above(values: np.ndarray, threshold: float) -> int:
    """Length of the longest contiguous run strictly above ``threshold``."""
    runs = contiguous_runs_above(values, threshold)
    if not runs:
        return 0
    return max(run.length for run in runs)


def trace_percentile(trace: DemandTrace, percentile: float) -> float:
    """``D_M%`` for a demand trace (delegates to the trace)."""
    return trace.percentile(percentile)


def percentile_profile(
    trace: DemandTrace, percentiles: Iterable[float]
) -> dict[float, float]:
    """Several percentiles of one trace, normalised to its peak.

    This reproduces the y-axis of the paper's Figure 6: percentiles of CPU
    demand as a percentage of the workload's own peak. A zero-peak trace
    maps every percentile to 0.
    """
    peak = trace.peak()
    profile: dict[float, float] = {}
    for percentile in percentiles:
        value = trace.percentile(percentile)
        profile[float(percentile)] = 0.0 if peak == 0 else 100.0 * value / peak
    return profile


def normalize_to_peak(trace: DemandTrace) -> DemandTrace:
    """Return the trace rescaled so its peak is 1 (identity for zero traces)."""
    peak = trace.peak()
    if peak == 0:
        return trace
    return trace.scaled(1.0 / peak)


def aggregate_traces(traces: Sequence[DemandTrace], name: str = "aggregate") -> DemandTrace:
    """Element-wise sum of several demand traces on a common calendar."""
    if not traces:
        raise TraceError("cannot aggregate an empty collection of traces")
    calendar = traces[0].calendar
    attribute = traces[0].attribute
    total = np.zeros(calendar.n_observations)
    for trace in traces:
        calendar.require_compatible(trace.calendar)
        if trace.attribute != attribute:
            raise CalendarMismatchError(
                f"trace {trace.name!r} has attribute {trace.attribute!r}, "
                f"expected {attribute!r}"
            )
        total += trace.values
    return DemandTrace(name, total, calendar, attribute)


def slice_weeks(trace: DemandTrace, start_week: int, n_weeks: int) -> DemandTrace:
    """Extract a whole-week window of a trace as a new trace.

    The result lives on a fresh :class:`TraceCalendar` of ``n_weeks``
    weeks at the same resolution — exactly the shape the placement
    service expects, so rolling capacity management can re-plan on a
    sliding window of recent history.
    """
    from repro.traces.calendar import TraceCalendar

    calendar = trace.calendar
    if n_weeks < 1:
        raise TraceError(f"n_weeks must be >= 1, got {n_weeks}")
    if not 0 <= start_week <= calendar.weeks - n_weeks:
        raise TraceError(
            f"window [{start_week}, {start_week + n_weeks}) out of range for "
            f"a {calendar.weeks}-week trace"
        )
    start = start_week * calendar.slots_per_week
    stop = start + n_weeks * calendar.slots_per_week
    window_calendar = TraceCalendar(
        weeks=n_weeks, slot_minutes=calendar.slot_minutes
    )
    return DemandTrace(
        trace.name, trace.values[start:stop], window_calendar, trace.attribute
    )


def fraction_above(values: np.ndarray, threshold: float) -> float:
    """Fraction of observations strictly above ``threshold``."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return 0.0
    return float(np.count_nonzero(values > threshold)) / values.size


def smallest_in_runs_exceeding(
    values: np.ndarray, threshold: float, max_run_length: int
) -> float | None:
    """Smallest value inside any above-threshold run longer than allowed.

    This implements the selection step of the paper's ``T_degr`` trace
    analysis: among the first run of more than ``R`` contiguous degraded
    observations, find ``D_min_degr``, the smallest demand, which is the
    cheapest observation to promote back to acceptable performance.
    Returns ``None`` when every run is within ``max_run_length``.
    """
    if max_run_length < 0:
        raise TraceError(f"max_run_length must be >= 0, got {max_run_length}")
    values = np.asarray(values, dtype=float)
    for run in contiguous_runs_above(values, threshold):
        if run.length > max_run_length:
            return float(values[run.start : run.stop].min())
    return None
