"""Trace quality validation.

Real monitoring data is messy: collectors die (stretches of zeros),
agents wedge (impossibly constant readings), and instrumentation bugs
produce isolated absurd spikes. Feeding such traces to the QoS
translation silently skews every downstream decision — a stuck-high
reading inflates D_max, a dead collector deflates the percentiles.

:func:`validate_trace` screens a demand trace for these pathologies and
returns a structured report; callers decide whether to repair, drop, or
proceed. The checks are heuristics with tunable thresholds, not proofs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping, Sequence

import numpy as np

from repro.traces.ops import contiguous_runs_above
from repro.traces.trace import DemandTrace


class IssueKind(Enum):
    """Categories of trace-quality problems."""

    ALL_ZERO = "all-zero"
    MOSTLY_ZERO = "mostly-zero"
    CONSTANT = "constant"
    STUCK_VALUE = "stuck-value"
    EXTREME_OUTLIER = "extreme-outlier"
    DEAD_COLLECTOR = "dead-collector"


@dataclass(frozen=True)
class TraceIssue:
    """One detected problem, with enough context to investigate."""

    kind: IssueKind
    message: str
    start: int | None = None
    stop: int | None = None


@dataclass(frozen=True)
class TraceQualityReport:
    """All problems found in one trace."""

    workload: str
    n_observations: int
    issues: tuple[TraceIssue, ...] = field(default_factory=tuple)

    @property
    def clean(self) -> bool:
        return not self.issues

    def has(self, kind: IssueKind) -> bool:
        return any(issue.kind is kind for issue in self.issues)


class RepairKind(Enum):
    """Categories of observations quarantined at ingest."""

    NON_FINITE = "non-finite"
    NEGATIVE = "negative"
    OUT_OF_ORDER = "out-of-order"
    MALFORMED_ROW = "malformed-row"


@dataclass(frozen=True)
class TraceRepairReport:
    """What ingest had to repair to admit one workload's series.

    Row-level problems (out-of-order rows, malformed rows) affect every
    workload in the file and appear in each workload's report; cell
    repairs (:attr:`RepairKind.NON_FINITE`, :attr:`RepairKind.NEGATIVE`)
    are counted per workload.
    """

    workload: str
    counts: Mapping[RepairKind, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def clean(self) -> bool:
        return self.total == 0

    def count(self, kind: RepairKind) -> int:
        return self.counts.get(kind, 0)

    def describe(self) -> str:
        if self.clean:
            return f"{self.workload}: clean"
        parts = ", ".join(
            f"{kind.value}={count}"
            for kind, count in sorted(
                self.counts.items(), key=lambda entry: entry[0].value
            )
            if count
        )
        return f"{self.workload}: {self.total} repairs ({parts})"


def quarantine_series(
    values: np.ndarray,
) -> tuple[np.ndarray, dict[RepairKind, int]]:
    """Repair a raw observation series instead of rejecting it.

    Non-finite observations (NaN / inf — a cell that failed to parse, a
    collector glitch) are replaced by the last finite observation before
    them (zero when there is none): carrying demand forward is the
    conservative choice, since a dead collector reads zero but the
    workload kept running. Negative observations are clamped to zero —
    demand below zero is always an instrumentation artifact. Returns the
    repaired copy plus the per-kind repair counts.
    """
    out = np.array(values, dtype=float)
    counts: dict[RepairKind, int] = {}
    bad = ~np.isfinite(out)
    if bad.any():
        counts[RepairKind.NON_FINITE] = int(bad.sum())
        n = out.shape[0]
        # Forward-fill: positions[i] is the latest finite index <= i
        # (-1 when none exists yet).
        positions = np.arange(n)
        positions[bad] = -1
        np.maximum.accumulate(positions, out=positions)
        filled = np.where(
            positions >= 0, out[np.clip(positions, 0, None)], 0.0
        )
        out = np.where(bad, filled, out)
    negative = out < 0
    if negative.any():
        counts[RepairKind.NEGATIVE] = int(negative.sum())
        out = np.where(negative, 0.0, out)
    return out, counts


def validate_trace(
    trace: DemandTrace,
    *,
    zero_fraction_threshold: float = 0.5,
    stuck_run_slots: int = 48,
    outlier_ratio: float = 20.0,
    dead_run_slots: int = 36,
) -> TraceQualityReport:
    """Screen one demand trace for common monitoring pathologies.

    Parameters
    ----------
    zero_fraction_threshold:
        Flag ``MOSTLY_ZERO`` when more than this fraction of
        observations is exactly zero.
    stuck_run_slots:
        Flag ``STUCK_VALUE`` when the same positive value repeats for
        more than this many consecutive slots (4 hours at 5-minute
        sampling by default) — realistic demand always jitters.
    outlier_ratio:
        Flag ``EXTREME_OUTLIER`` when the peak exceeds this multiple of
        the 99th percentile — a single reading that far above the rest
        of the distribution is usually an instrumentation artifact.
    dead_run_slots:
        Flag ``DEAD_COLLECTOR`` for a contiguous all-zero stretch longer
        than this (3 hours by default) inside an otherwise live trace.
    """
    values = trace.values
    issues: list[TraceIssue] = []

    if values.size and not values.any():
        issues.append(
            TraceIssue(IssueKind.ALL_ZERO, "every observation is zero")
        )
        return TraceQualityReport(trace.name, len(trace), tuple(issues))

    zero_fraction = float(np.count_nonzero(values == 0)) / values.size
    if zero_fraction > zero_fraction_threshold:
        issues.append(
            TraceIssue(
                IssueKind.MOSTLY_ZERO,
                f"{zero_fraction:.0%} of observations are zero",
            )
        )

    if trace.is_constant():
        issues.append(
            TraceIssue(
                IssueKind.CONSTANT,
                f"every observation equals {values[0]:g}",
            )
        )
        return TraceQualityReport(trace.name, len(trace), tuple(issues))

    issues.extend(_stuck_value_issues(values, stuck_run_slots))

    p99 = float(np.percentile(values, 99))
    peak = float(values.max())
    if p99 > 0 and peak > outlier_ratio * p99:
        peak_index = int(values.argmax())
        issues.append(
            TraceIssue(
                IssueKind.EXTREME_OUTLIER,
                f"peak {peak:g} is {peak / p99:.0f}x the 99th percentile",
                start=peak_index,
                stop=peak_index + 1,
            )
        )

    # Dead collector: long all-zero runs inside a live trace.
    zero_mask = (values == 0).astype(float)
    for run in contiguous_runs_above(zero_mask, 0.5):
        if run.length > dead_run_slots:
            issues.append(
                TraceIssue(
                    IssueKind.DEAD_COLLECTOR,
                    f"{run.length} consecutive zero observations",
                    start=run.start,
                    stop=run.stop,
                )
            )

    return TraceQualityReport(trace.name, len(trace), tuple(issues))


def _stuck_value_issues(
    values: np.ndarray, stuck_run_slots: int
) -> list[TraceIssue]:
    """Find long runs of one repeated positive value."""
    issues: list[TraceIssue] = []
    n = values.shape[0]
    run_start = 0
    for index in range(1, n + 1):
        at_end = index == n
        if at_end or values[index] != values[run_start]:
            length = index - run_start
            if length > stuck_run_slots and values[run_start] > 0:
                issues.append(
                    TraceIssue(
                        IssueKind.STUCK_VALUE,
                        f"value {values[run_start]:g} repeated "
                        f"{length} times",
                        start=run_start,
                        stop=index,
                    )
                )
            run_start = index
    return issues


def validate_ensemble(
    traces: Sequence[DemandTrace], **thresholds
) -> dict[str, TraceQualityReport]:
    """Validate every trace; returns reports keyed by workload name."""
    return {
        trace.name: validate_trace(trace, **thresholds) for trace in traces
    }
