"""Allocation traces: per-CoS capacity requirements over time.

The QoS translation (Section V of the paper) turns each workload's demand
trace into a *time-varying allocation requirement*, split across the pool's
two classes of service. :class:`AllocationTrace` is a single series of
allocation values; :class:`CoSAllocationPair` bundles the CoS1 (guaranteed)
and CoS2 (statistically multiplexed) series for one workload, which is the
unit the workload placement service schedules.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.exceptions import CalendarMismatchError, TraceError
from repro.traces.calendar import TraceCalendar
from repro.traces.trace import DemandTrace

ArrayLike = Union[Sequence[float], np.ndarray]


class AllocationTrace:
    """An immutable time series of capacity-allocation requirements.

    Semantically distinct from :class:`~repro.traces.trace.DemandTrace`:
    demand is what the workload *used*; allocation is what the workload
    manager must *grant* (demand inflated by the burst factor and shaped by
    the QoS translation).
    """

    __slots__ = ("name", "attribute", "calendar", "_values")

    def __init__(
        self,
        name: str,
        values: ArrayLike,
        calendar: TraceCalendar,
        attribute: str = "cpu",
    ):
        array = np.asarray(values, dtype=float)
        if array.ndim != 1:
            raise TraceError(
                f"allocation values must be 1-D, got shape {array.shape}"
            )
        if array.shape[0] != calendar.n_observations:
            raise TraceError(
                f"allocation trace {name!r} has {array.shape[0]} observations "
                f"but the calendar requires {calendar.n_observations}"
            )
        if not np.all(np.isfinite(array)):
            raise TraceError(f"allocation trace {name!r} contains non-finite values")
        if np.any(array < 0):
            raise TraceError(f"allocation trace {name!r} contains negative values")
        array.flags.writeable = False
        self.name = name
        self.attribute = attribute
        self.calendar = calendar
        self._values = array

    @property
    def values(self) -> np.ndarray:
        return self._values

    def __len__(self) -> int:
        return self._values.shape[0]

    def __repr__(self) -> str:
        return (
            f"AllocationTrace(name={self.name!r}, n={len(self)}, "
            f"peak={self.peak():.3f})"
        )

    def peak(self) -> float:
        """The maximum allocation requirement across the trace."""
        return float(self._values.max())

    def mean(self) -> float:
        return float(self._values.mean())

    def __add__(self, other: "AllocationTrace") -> "AllocationTrace":
        """Element-wise sum of two allocation traces on the same calendar."""
        if not isinstance(other, AllocationTrace):
            return NotImplemented
        self.calendar.require_compatible(other.calendar)
        if self.attribute != other.attribute:
            raise TraceError(
                f"cannot add allocations for attributes {self.attribute!r} "
                f"and {other.attribute!r}"
            )
        return AllocationTrace(
            f"{self.name}+{other.name}",
            self._values + other._values,
            self.calendar,
            self.attribute,
        )


class CoSAllocationPair:
    """Per-CoS allocation requirements for one workload.

    Attributes
    ----------
    cos1:
        Guaranteed-class allocation series. The placement service must keep
        the per-server sum of CoS1 *peaks* within server capacity.
    cos2:
        Statistically multiplexed series served with resource access
        probability theta.
    """

    __slots__ = ("name", "cos1", "cos2")

    def __init__(self, name: str, cos1: AllocationTrace, cos2: AllocationTrace):
        cos1.calendar.require_compatible(cos2.calendar)
        if cos1.attribute != cos2.attribute:
            raise TraceError(
                f"CoS1 attribute {cos1.attribute!r} differs from CoS2 "
                f"attribute {cos2.attribute!r}"
            )
        self.name = name
        self.cos1 = cos1
        self.cos2 = cos2

    @property
    def calendar(self) -> TraceCalendar:
        return self.cos1.calendar

    @property
    def attribute(self) -> str:
        return self.cos1.attribute

    def total(self) -> AllocationTrace:
        """The combined (CoS1 + CoS2) allocation requirement series."""
        return AllocationTrace(
            self.name,
            self.cos1.values + self.cos2.values,
            self.calendar,
            self.attribute,
        )

    def peak_allocation(self) -> float:
        """Peak of the combined allocation requirement (``C_peak`` input)."""
        return float((self.cos1.values + self.cos2.values).max())

    def peak_cos1(self) -> float:
        """Peak guaranteed requirement — bounds CoS1 admission per server."""
        return self.cos1.peak()

    def cos2_fraction(self) -> float:
        """Fraction of total allocation volume carried by CoS2.

        Higher values mean more statistical-multiplexing opportunity for
        the pool operator. Returns 0 for an all-zero pair.
        """
        total = float(self.cos1.values.sum() + self.cos2.values.sum())
        if total == 0:
            return 0.0
        return float(self.cos2.values.sum()) / total

    def __repr__(self) -> str:
        return (
            f"CoSAllocationPair(name={self.name!r}, "
            f"peak_cos1={self.peak_cos1():.3f}, "
            f"peak_total={self.peak_allocation():.3f})"
        )


def allocation_from_demand(
    demand: DemandTrace, burst_factor: float, name: str | None = None
) -> AllocationTrace:
    """Build an allocation trace as ``burst_factor × demand``.

    This is the workload-manager contract from Section II: the allocation
    granted for an interval is the product of the burst factor and the
    measured demand, steering utilization-of-allocation toward
    ``1 / burst_factor``.
    """
    if burst_factor <= 0:
        raise TraceError(f"burst factor must be > 0, got {burst_factor}")
    return AllocationTrace(
        name if name is not None else demand.name,
        demand.values * burst_factor,
        demand.calendar,
        demand.attribute,
    )


def aggregate_pairs(
    pairs: Sequence[CoSAllocationPair], name: str = "aggregate"
) -> CoSAllocationPair:
    """Sum several workloads' per-CoS requirements slot-by-slot.

    This is the series a server must satisfy when all ``pairs`` are placed
    on it. Raises :class:`TraceError` on an empty input because an
    aggregate needs a calendar to live on.
    """
    if not pairs:
        raise TraceError("cannot aggregate an empty collection of pairs")
    calendar = pairs[0].calendar
    attribute = pairs[0].attribute
    cos1_sum = np.zeros(calendar.n_observations)
    cos2_sum = np.zeros(calendar.n_observations)
    for pair in pairs:
        calendar.require_compatible(pair.calendar)
        if pair.attribute != attribute:
            raise CalendarMismatchError(
                f"pair {pair.name!r} has attribute {pair.attribute!r}, "
                f"expected {attribute!r}"
            )
        cos1_sum += pair.cos1.values
        cos2_sum += pair.cos2.values
    return CoSAllocationPair(
        name,
        AllocationTrace(f"{name}.cos1", cos1_sum, calendar, attribute),
        AllocationTrace(f"{name}.cos2", cos2_sum, calendar, attribute),
    )
