"""Figure 7: MaxCapReduction per application under T_degr constraints.

For M_degr = 3%, (U_low, U_high, U_degr) = (0.5, 0.66, 0.9) and
T_degr in {none, 2h, 1h, 30 min}, the paper reports the percentage
reduction of each application's maximum allocation relative to the
M_degr = 0 case, for theta = 0.95 (Figure 7a) and theta = 0.6
(Figure 7b). Published shape:

* many applications reach the 26.7% upper bound of formula 5;
* tighter T_degr shrinks the reduction;
* the T_degr effect is stronger for theta = 0.6 than for theta = 0.95
  (higher theta keeps more of the reduction under time limits).
"""

import numpy as np
import pytest

from repro.core.cos import PoolCommitments
from repro.core.degradation import max_cap_reduction_bound
from repro.core.qos import case_study_qos
from repro.core.translation import QoSTranslator

from conftest import M_DEGR_PERCENT, U_DEGR, U_HIGH, print_series

T_DEGR_CASES = [None, 120.0, 60.0, 30.0]


def reductions_for(ensemble, theta, t_degr):
    translator = QoSTranslator(PoolCommitments.of(theta=theta))
    qos = case_study_qos(m_degr_percent=M_DEGR_PERCENT, t_degr_minutes=t_degr)
    return np.array(
        [
            translator.translate(trace, qos).cap_reduction
            for trace in ensemble
        ]
    )


@pytest.mark.parametrize("theta", [0.95, 0.6], ids=["fig7a", "fig7b"])
def test_fig7_maxcap_reduction(ensemble, benchmark, theta):
    def compute():
        return {
            t_degr: reductions_for(ensemble, theta, t_degr)
            for t_degr in T_DEGR_CASES
        }

    by_case = benchmark.pedantic(compute, rounds=1, iterations=1)

    labels = {None: "none", 120.0: "2h", 60.0: "1h", 30.0: "30min"}
    rows = ["app     " + "  ".join(f"{labels[t]:>6}" for t in T_DEGR_CASES)]
    for index, trace in enumerate(ensemble):
        cells = "  ".join(
            f"{100 * by_case[t][index]:6.1f}" for t in T_DEGR_CASES
        )
        rows.append(f"{trace.name}  {cells}")
    print_series(
        f"Figure 7 (theta={theta}): MaxCapReduction % per application", rows
    )

    bound = max_cap_reduction_bound(U_HIGH, U_DEGR)

    # No reduction ever exceeds the formula-5 bound.
    for reductions in by_case.values():
        assert (reductions <= bound + 1e-9).all()

    # Without a time limit, many applications reach the bound (paper:
    # "many of the 26 applications have a 26.7% reduction").
    at_bound = np.count_nonzero(by_case[None] >= bound - 0.01)
    assert at_bound >= 8, f"only {at_bound} apps reach the 26.7% bound"

    # Tighter T_degr gives equal-or-smaller reductions per app.
    for tighter, looser in [(30.0, 60.0), (60.0, 120.0), (120.0, None)]:
        assert (by_case[tighter] <= by_case[looser] + 1e-9).all()


def test_fig7_theta_interaction(ensemble, benchmark):
    """The T_degr penalty (reduction lost vs no-limit) is larger at
    theta=0.6 than at theta=0.95 on average — the paper's observation
    that higher theta values preserve more of the saving."""

    def compute():
        penalty = {}
        for theta in (0.6, 0.95):
            no_limit = reductions_for(ensemble, theta, None)
            tight = reductions_for(ensemble, theta, 30.0)
            penalty[theta] = float((no_limit - tight).mean())
        return penalty

    penalty = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_series(
        "Figure 7 interaction: mean reduction lost to T_degr=30min",
        [f"theta={theta}: {100 * lost:.2f}%" for theta, lost in penalty.items()],
    )
    assert penalty[0.6] >= penalty[0.95] - 1e-9
