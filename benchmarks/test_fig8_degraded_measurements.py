"""Figure 8: percentage of measurements with degraded performance.

With M_degr = 3%, up to 3% of measurements may sit in the degraded band
(U_high, U_degr]. The paper shows the *achieved* percentage per
application under T_degr in {none, 2h, 1h, 30 min}:

* always within the 3% budget;
* the T_degr = 30 min constraint collapses the degraded percentage well
  below the budget — under ~0.5% for theta = 0.95 and under ~1.5% for
  theta = 0.6 (Figures 8a/8b).
"""

import numpy as np
import pytest

from repro.core.cos import PoolCommitments
from repro.core.qos import case_study_qos
from repro.core.translation import QoSTranslator
from repro.util.floats import isclose

from conftest import M_DEGR_PERCENT, print_series

T_DEGR_CASES = [None, 120.0, 60.0, 30.0]


def degraded_fractions(ensemble, theta, t_degr):
    translator = QoSTranslator(PoolCommitments.of(theta=theta))
    qos = case_study_qos(m_degr_percent=M_DEGR_PERCENT, t_degr_minutes=t_degr)
    return np.array(
        [
            translator.translate(trace, qos).degraded_fraction
            for trace in ensemble
        ]
    )


@pytest.mark.parametrize("theta", [0.95, 0.6], ids=["fig8a", "fig8b"])
def test_fig8_degraded_percentage(ensemble, benchmark, theta):
    def compute():
        return {
            t_degr: degraded_fractions(ensemble, theta, t_degr)
            for t_degr in T_DEGR_CASES
        }

    by_case = benchmark.pedantic(compute, rounds=1, iterations=1)

    labels = {None: "none", 120.0: "2h", 60.0: "1h", 30.0: "30min"}
    rows = ["app     " + "  ".join(f"{labels[t]:>6}" for t in T_DEGR_CASES)]
    for index, trace in enumerate(ensemble):
        cells = "  ".join(
            f"{100 * by_case[t][index]:6.2f}" for t in T_DEGR_CASES
        )
        rows.append(f"{trace.name}  {cells}")
    print_series(
        f"Figure 8 (theta={theta}): % of measurements degraded", rows
    )

    budget = M_DEGR_PERCENT / 100.0

    # Every case stays within the 3% budget.
    for fractions in by_case.values():
        assert (fractions <= budget + 1e-9).all()

    # Tighter T_degr never increases the degraded percentage.
    for tighter, looser in [(30.0, 60.0), (60.0, 120.0), (120.0, None)]:
        assert (by_case[tighter] <= by_case[looser] + 1e-9).all()

    # The 30-minute limit collapses degradation well below the budget
    # (paper: < 0.5% at theta=0.95, < 1.5% at theta=0.6).
    ceiling = 0.005 if isclose(theta, 0.95) else 0.015
    worst = float(by_case[30.0].max())
    assert worst <= ceiling + 0.005, (
        f"worst degraded fraction {worst:.4f} above the expected band"
    )
