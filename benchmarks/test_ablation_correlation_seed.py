"""Ablation: correlation-aware seeding of the placement search.

Section VIII suggests that "heuristic search approaches that also take
into account correlations in resource demands among workloads may also
be worth exploring". This benchmark compares the correlation-aware
greedy seed against plain first-fit/best-fit on the case-study
workloads, both standalone and as genetic-search seeds.
"""

import pytest

from repro.core.cos import CoSCommitment, PoolCommitments
from repro.core.qos import case_study_qos
from repro.core.translation import QoSTranslator
from repro.placement.correlation import correlation_aware_seed
from repro.placement.evaluation import PlacementEvaluator
from repro.placement.greedy import best_fit_decreasing, first_fit_decreasing
from repro.resources.pool import ResourcePool
from repro.resources.server import homogeneous_servers

from conftest import M_DEGR_PERCENT, print_series

THETA = 0.6


@pytest.fixture(scope="module")
def evaluator(ensemble):
    translator = QoSTranslator(PoolCommitments.of(theta=THETA))
    qos = case_study_qos(m_degr_percent=M_DEGR_PERCENT)
    pairs = [translator.translate(trace, qos).pair for trace in ensemble]
    return PlacementEvaluator(pairs, CoSCommitment(theta=THETA, deadline_minutes=60))


def test_correlation_seed_quality(evaluator, benchmark):
    pool = ResourcePool(homogeneous_servers(20, cpus=16))

    def compute():
        return {
            "first_fit": first_fit_decreasing(evaluator, pool),
            "best_fit": best_fit_decreasing(evaluator, pool),
            "correlation": correlation_aware_seed(evaluator, pool),
        }

    seeds = benchmark.pedantic(compute, rounds=1, iterations=1)

    counts = {name: len(set(seed)) for name, seed in seeds.items()}
    rows = [f"{name:12} {count} servers" for name, count in counts.items()]
    print_series("Greedy seed comparison (theta=0.6, M_degr=3%)", rows)

    # All seeds must be feasible placements of all 26 workloads.
    servers = list(pool.servers)
    for name, seed in seeds.items():
        groups: dict[int, list[int]] = {}
        for workload_index, server_index in enumerate(seed):
            groups.setdefault(server_index, []).append(workload_index)
        for server_index, indices in groups.items():
            assert evaluator.evaluate_group(
                indices, servers[server_index]
            ).fits, f"{name} seed infeasible on server {server_index}"

    # The correlation seed is competitive: within one server of the best
    # greedy heuristic (it optimises peak overlap, not bin count, so a
    # small gap either way is expected).
    best_greedy = min(counts["first_fit"], counts["best_fit"])
    assert counts["correlation"] <= best_greedy + 1
