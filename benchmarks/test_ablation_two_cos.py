"""Ablation: two classes of service vs guaranteed-only placement.

Section VII: "If all demands were associated with CoS1 then ... we would
require at least 15 servers for case 1 and 11 servers for case 3. Thus
having multiple classes of service is advantageous." This benchmark
quantifies that gap on the synthetic ensemble: translating everything
into the guaranteed class forces peak-sum packing and needs far more
servers than the portfolio split.
"""

import pytest

from repro.baselines.single_cos import single_cos_pair
from repro.core.cos import CoSCommitment, PoolCommitments
from repro.core.qos import case_study_qos
from repro.core.translation import QoSTranslator
from repro.placement.consolidation import Consolidator
from repro.placement.genetic import GeneticSearchConfig
from repro.resources.pool import ResourcePool
from repro.resources.server import homogeneous_servers

from conftest import M_DEGR_PERCENT, print_series

THETA = 0.6
SEARCH = GeneticSearchConfig(
    seed=1, population_size=24, max_generations=120, stall_generations=20
)


@pytest.mark.parametrize("m_degr", [0.0, M_DEGR_PERCENT], ids=["strict", "relaxed"])
def test_two_cos_vs_single_cos(ensemble, benchmark, m_degr):
    qos = case_study_qos(m_degr_percent=m_degr)
    translator = QoSTranslator(PoolCommitments.of(theta=THETA))
    consolidator = Consolidator(
        ResourcePool(homogeneous_servers(20, cpus=16)),
        CoSCommitment(theta=THETA, deadline_minutes=60),
        config=SEARCH,
    )

    def compute():
        two_cos = consolidator.consolidate(
            [translator.translate(trace, qos).pair for trace in ensemble]
        )
        one_cos = consolidator.consolidate(
            [single_cos_pair(trace, qos) for trace in ensemble]
        )
        return two_cos, one_cos

    two_cos, one_cos = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_series(
        f"Two-CoS ablation (theta={THETA}, M_degr={m_degr}%)",
        [
            f"two CoS:    {two_cos.servers_used} servers, "
            f"C_requ={two_cos.sum_required:.0f}",
            f"single CoS: {one_cos.servers_used} servers, "
            f"C_requ={one_cos.sum_required:.0f}",
            f"extra servers without CoS2: "
            f"{one_cos.servers_used - two_cos.servers_used}",
        ],
    )

    # The paper's case study: roughly twice the servers without CoS2
    # (15 vs 8). Require a substantial gap.
    assert one_cos.servers_used > two_cos.servers_used
    assert one_cos.servers_used >= two_cos.servers_used * 1.3
    # Guaranteed-only required capacity is also much larger.
    assert one_cos.sum_required > two_cos.sum_required
