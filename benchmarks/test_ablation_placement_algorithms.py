"""Ablation: genetic search vs greedy vs scalar bin packing (Section VIII).

The paper argues (a) ILP-style peak-based bin packing is impractical and
ignores statistical multiplexing, and (b) the genetic search compares
favourably to greedy placement. This benchmark runs all of them on the
case-study workloads:

* genetic / first-fit / best-fit all use the trace-accurate simulator;
* the bin-packing baselines place scalar *peak allocations* (no time
  structure), reproducing the authors' earlier consolidation method.
"""

import pytest

from repro.core.cos import CoSCommitment, PoolCommitments
from repro.core.qos import case_study_qos
from repro.core.translation import QoSTranslator
from repro.placement.binpack import (
    lower_bound,
    pack_branch_and_bound,
    pack_first_fit_decreasing,
)
from repro.placement.consolidation import Consolidator
from repro.placement.genetic import GeneticSearchConfig
from repro.resources.pool import ResourcePool
from repro.resources.server import homogeneous_servers

from conftest import M_DEGR_PERCENT, print_series

THETA = 0.6
SERVER_CPUS = 16
SEARCH = GeneticSearchConfig(
    seed=1, population_size=24, max_generations=120, stall_generations=20
)


@pytest.fixture(scope="module")
def pairs(ensemble):
    translator = QoSTranslator(PoolCommitments.of(theta=THETA))
    qos = case_study_qos(m_degr_percent=M_DEGR_PERCENT)
    return [translator.translate(trace, qos).pair for trace in ensemble]


@pytest.fixture(scope="module")
def consolidator():
    return Consolidator(
        ResourcePool(homogeneous_servers(16, cpus=SERVER_CPUS)),
        CoSCommitment(theta=THETA, deadline_minutes=60),
        config=SEARCH,
    )


@pytest.fixture(scope="module")
def results(pairs, consolidator):
    trace_driven = {
        algorithm: consolidator.consolidate(pairs, algorithm=algorithm)
        for algorithm in ("genetic", "first_fit", "best_fit")
    }
    peaks = [pair.peak_allocation() for pair in pairs]
    packing = {
        "binpack_ffd": pack_first_fit_decreasing(peaks, SERVER_CPUS),
        "binpack_bb": pack_branch_and_bound(peaks, SERVER_CPUS, max_nodes=50_000),
    }
    return trace_driven, packing, peaks


def test_ablation_algorithm_quality(results, benchmark, pairs, consolidator):
    benchmark.pedantic(
        lambda: consolidator.consolidate(pairs, algorithm="genetic"),
        rounds=1,
        iterations=1,
    )
    trace_driven, packing, peaks = results

    rows = ["algorithm      servers  C_requ  kind"]
    for name, result in trace_driven.items():
        rows.append(
            f"{name:13}  {result.servers_used:7d}  {result.sum_required:6.1f}"
            "  trace-driven"
        )
    for name, result in packing.items():
        rows.append(
            f"{name:13}  {result.n_bins:7d}  {'-':>6}  peak-based"
        )
    rows.append(f"volume lower bound (peaks): {lower_bound(peaks, SERVER_CPUS)}")
    print_series("Placement algorithm ablation (theta=0.6, M_degr=3%)", rows)

    genetic = trace_driven["genetic"]
    # The genetic search never uses more servers than the greedy seeds.
    assert genetic.servers_used <= trace_driven["first_fit"].servers_used
    assert genetic.servers_used <= trace_driven["best_fit"].servers_used

    # Peak-based packing ignores multiplexing and needs at least as many
    # servers as the trace-driven placement (the paper's Section VIII
    # criticism of the ILP approach).
    assert packing["binpack_ffd"].n_bins >= genetic.servers_used
    assert packing["binpack_bb"].n_bins >= genetic.servers_used

    # Exact packing is never worse than its own FFD incumbent.
    assert packing["binpack_bb"].n_bins <= packing["binpack_ffd"].n_bins


def test_ablation_genetic_score_dominates(results, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    trace_driven, _, _ = results
    genetic = trace_driven["genetic"]
    for name in ("first_fit", "best_fit"):
        assert genetic.score >= trace_driven[name].score - 1e-9, (
            f"genetic score {genetic.score:.3f} below {name} "
            f"{trace_driven[name].score:.3f}"
        )
