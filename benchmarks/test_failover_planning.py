"""Section VI-C / VII: failure planning without a spare server.

The paper's claim: run normal mode with the strict QoS (Table I cases
1/4, needing N servers); when any single server fails, the affected
system still fits on the remaining N-1 servers *if* the relaxed failure-
mode QoS (cases 2/3/5/6) is applied — so no spare server is required.

The benchmark reproduces the what-if sweep: consolidate under strict
normal-mode QoS, then remove each used server in turn and re-place all
workloads under the relaxed failure-mode QoS on the survivors.
"""

import pytest

from repro.core.cos import PoolCommitments
from repro.core.framework import ROpus
from repro.core.qos import QoSPolicy, case_study_qos
from repro.placement.genetic import GeneticSearchConfig
from repro.resources.pool import ResourcePool
from repro.resources.server import homogeneous_servers

from conftest import M_DEGR_PERCENT, print_series

SEARCH = GeneticSearchConfig(
    seed=1, population_size=24, max_generations=120, stall_generations=20
)


@pytest.mark.parametrize("theta", [0.6, 0.95], ids=["theta-0.60", "theta-0.95"])
def test_failover_without_spare(ensemble, benchmark, theta):
    framework = ROpus(
        PoolCommitments.of(theta=theta, deadline_minutes=60),
        ResourcePool(homogeneous_servers(14, cpus=16)),
        search_config=SEARCH,
    )
    policy = QoSPolicy(
        normal=case_study_qos(m_degr_percent=0),
        failure=case_study_qos(
            m_degr_percent=M_DEGR_PERCENT, t_degr_minutes=30.0
        ),
    )

    def compute():
        return framework.plan(
            ensemble, policy, plan_failures=True, relax_all_on_failure=True
        )

    plan = benchmark.pedantic(compute, rounds=1, iterations=1)
    report = plan.failure_report
    assert report is not None

    rows = [
        f"normal mode: {plan.servers_used} servers "
        f"(C_requ={plan.consolidation.sum_required:.0f})"
    ]
    for case in report.cases:
        status = "ok" if case.feasible else "INFEASIBLE"
        used = case.servers_used if case.servers_used is not None else "-"
        rows.append(
            f"fail {case.label}: {status}, "
            f"{used} surviving servers used, "
            f"{len(case.affected_workloads)} workloads displaced"
        )
    rows.append(f"spare server needed: {report.spare_server_needed}")
    print_series(
        f"Failure planning (theta={theta}): strict normal QoS, "
        "relaxed failure QoS",
        rows,
    )

    # The paper's headline: every single-server failure is absorbable
    # with the relaxed QoS — no spare server needed.
    assert report.all_supported, "failure modes required a spare server"
    # One what-if per server used in normal mode.
    assert len(report.cases) == plan.servers_used
    # Each re-placement fits on at most (normal - 1) + margin servers of
    # the surviving pool (13 servers remain out of 14).
    for case in report.cases:
        assert case.result is not None
        assert case.servers_used <= 13


def test_failover_strict_failure_qos_needs_more(ensemble, benchmark):
    """Ablation of the claim: if failure mode must keep the *strict* QoS,
    the re-placements need at least as many servers as the relaxed
    failure QoS — quantifying what the QoS relaxation buys."""
    theta = 0.6
    framework = ROpus(
        PoolCommitments.of(theta=theta, deadline_minutes=60),
        ResourcePool(homogeneous_servers(14, cpus=16)),
        search_config=SEARCH,
    )
    strict = case_study_qos(m_degr_percent=0)
    relaxed = case_study_qos(m_degr_percent=M_DEGR_PERCENT, t_degr_minutes=30.0)

    def compute():
        plans = {}
        for label, failure_qos in [("strict", strict), ("relaxed", relaxed)]:
            policy = QoSPolicy(normal=strict, failure=failure_qos)
            plans[label] = framework.plan(
                ensemble, policy, plan_failures=True, relax_all_on_failure=True
            )
        return plans

    plans = benchmark.pedantic(compute, rounds=1, iterations=1)

    def worst_servers(plan):
        return max(
            case.servers_used
            for case in plan.failure_report.cases
            if case.servers_used is not None
        )

    strict_worst = worst_servers(plans["strict"])
    relaxed_worst = worst_servers(plans["relaxed"])
    print_series(
        "Failure QoS ablation (theta=0.6)",
        [
            f"strict failure QoS: worst-case {strict_worst} servers",
            f"relaxed failure QoS: worst-case {relaxed_worst} servers",
        ],
    )
    assert relaxed_worst <= strict_worst
