"""Ablation: placement quality vs genetic-search budget.

The paper runs its GA for ~10 minutes per consolidation on 2006
hardware and stops on score stagnation. This ablation measures how
solution quality (servers used, consolidation score) responds to the
generation budget on the case-study workloads — quantifying the
diminishing returns that justify the stall-based termination criterion.
"""

import pytest

from repro.core.cos import CoSCommitment, PoolCommitments
from repro.core.qos import case_study_qos
from repro.core.translation import QoSTranslator
from repro.placement.consolidation import Consolidator
from repro.placement.genetic import GeneticSearchConfig
from repro.resources.pool import ResourcePool
from repro.resources.server import homogeneous_servers

from conftest import M_DEGR_PERCENT, print_series

THETA = 0.6
BUDGETS = [1, 10, 40, 120]


@pytest.fixture(scope="module")
def pairs(ensemble):
    translator = QoSTranslator(PoolCommitments.of(theta=THETA))
    qos = case_study_qos(m_degr_percent=M_DEGR_PERCENT)
    return [translator.translate(trace, qos).pair for trace in ensemble]


def run_with_budget(pairs, max_generations):
    consolidator = Consolidator(
        ResourcePool(homogeneous_servers(16, cpus=16)),
        CoSCommitment(theta=THETA, deadline_minutes=60),
        config=GeneticSearchConfig(
            seed=2,
            population_size=24,
            max_generations=max_generations,
            stall_generations=max_generations,
        ),
    )
    return consolidator.consolidate(pairs, algorithm="genetic")


def test_search_budget_sensitivity(pairs, benchmark):
    def compute():
        return {budget: run_with_budget(pairs, budget) for budget in BUDGETS}

    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = ["generations  servers  C_requ   score"]
    for budget in BUDGETS:
        result = results[budget]
        rows.append(
            f"{budget:11d}  {result.servers_used:7d}  "
            f"{result.sum_required:6.1f}  {result.score:6.2f}"
        )
    print_series("Genetic search budget ablation (theta=0.6)", rows)

    scores = [results[budget].score for budget in BUDGETS]
    servers = [results[budget].servers_used for budget in BUDGETS]

    # More budget never hurts (the search keeps its best feasible ever,
    # and is seeded identically).
    assert all(a <= b + 1e-9 for a, b in zip(scores, scores[1:]))
    assert all(a >= b for a, b in zip(servers, servers[1:]))

    # Diminishing returns: the greedy/correlation seeds already deliver
    # the bulk of the final quality — generations refine, they don't
    # rescue. (This is what justifies stall-based termination.)
    assert scores[0] >= 0.85 * scores[-1]
    assert servers[0] <= servers[-1] + 1
