"""Figure 6: top percentiles of CPU demand for the 26 applications.

The paper normalises each application's demand to its own peak and plots
the 97th-99.9th percentiles against the application number (spikiest
first). The published features:

* the leftmost two applications have a small percentage of points that
  are very large relative to the rest (even the 99.5th percentile is far
  below the peak);
* the leftmost ~10 applications have their top 3% of demand 2-10x
  higher than the remaining demands;
* percentile curves rise with application number (the right side of the
  figure is smooth, steady workloads).
"""

import numpy as np

from repro.traces.ops import percentile_profile

from conftest import print_series

PERCENTILES = [99.9, 99.5, 99.0, 98.0, 97.0]


def test_fig6_percentile_profiles(ensemble, benchmark):
    def compute():
        return [
            percentile_profile(trace, PERCENTILES) for trace in ensemble
        ]

    profiles = benchmark(compute)

    header = "app    " + "  ".join(f"p{p:<5}" for p in PERCENTILES)
    rows = [header]
    for trace, profile in zip(ensemble, profiles):
        cells = "  ".join(f"{profile[p]:6.1f}" for p in PERCENTILES)
        rows.append(f"{trace.name}  {cells}")
    print_series(
        "Figure 6: top percentiles of CPU demand (% of own peak)", rows
    )

    p97 = np.array([profile[97.0] for profile in profiles])

    # Leftmost two apps: spike-dominated (97th percentile far below peak).
    assert (p97[:2] < 50).all()

    # Leftmost ten apps: top 3% of demand is 2-10x the rest, i.e. the
    # 97th percentile is at most ~50% of peak.
    assert (p97[:10] < 55).all()

    # The right side of the figure is much smoother.
    assert p97[-6:].mean() > 60

    # Percentile curves are non-increasing in percentile order for every
    # app (99.9 >= 99.5 >= ... >= 97).
    for profile in profiles:
        values = [profile[p] for p in PERCENTILES]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    # Overall left-to-right rising trend.
    assert p97[:8].mean() < p97[-8:].mean()
