"""Shared fixtures for the benchmark harness.

Every benchmark reproduces one table or figure from the paper's
evaluation (Section VII) on the synthetic 26-application ensemble.
The ensemble is generated once per session with the pinned seed so all
benchmarks report against the same traces, exactly as the paper's case
study reuses its four weeks of measurements.
"""

from __future__ import annotations

import pytest

from repro.workloads.ensemble import case_study_ensemble

CASE_STUDY_SEED = 2006

# The paper's application QoS parameters (Section VII).
U_LOW = 0.5
U_HIGH = 0.66
U_DEGR = 0.9
M_DEGR_PERCENT = 3.0


@pytest.fixture(scope="session")
def ensemble():
    """The 26-application, 4-week, 5-minute case-study ensemble."""
    return case_study_ensemble(seed=CASE_STUDY_SEED, weeks=4)


def print_series(title: str, rows: list[str]) -> None:
    """Emit a benchmark's data series to stdout (shown with pytest -s)."""
    banner = "=" * len(title)
    print(f"\n{title}\n{banner}")
    for row in rows:
        print(row)
