"""Ablation: percentile capping vs M_degr/T_degr semantics (Section VIII).

Related work caps each workload at a demand percentile (Urgaonkar et
al.). The paper's criticism: a bare percentile budget "does not take
into account the impact of sustained performance degradation on user
experience as our M_degr and T_degr terms do". This benchmark measures
the degraded-run-length profile of percentile capping on the case-study
workloads, then shows R-Opus with T_degr=30 min bounds every run while
keeping a comparable capacity saving.
"""

import numpy as np

from repro.baselines.percentile_cap import degraded_run_profile
from repro.core.cos import PoolCommitments
from repro.core.qos import case_study_qos
from repro.core.translation import QoSTranslator

from conftest import M_DEGR_PERCENT, print_series

PERCENTILE = 100.0 - M_DEGR_PERCENT  # cap at the 97th percentile
THETA = 0.6
T_DEGR_MINUTES = 30.0


def test_percentile_cap_run_lengths(ensemble, benchmark):
    def compute():
        return [degraded_run_profile(trace, PERCENTILE) for trace in ensemble]

    profiles = benchmark(compute)

    rows = ["app     degraded%  runs  longest(min)  mean(min)"]
    for profile in profiles:
        rows.append(
            f"{profile.workload}  {100 * profile.degraded_fraction:8.2f}"
            f"  {profile.n_runs:4d}  {profile.longest_run_minutes:12.0f}"
            f"  {profile.mean_run_minutes:9.1f}"
        )
    print_series(
        f"Percentile capping at P{PERCENTILE:.0f}: degraded run lengths", rows
    )

    longest = np.array([profile.longest_run_minutes for profile in profiles])
    # The baseline respects the 3% budget by construction ...
    assert all(profile.degraded_fraction <= 0.03 + 1e-9 for profile in profiles)
    # ... but lets degradation persist: at least a few applications see
    # sustained outages beyond 30 minutes.
    assert np.count_nonzero(longest > T_DEGR_MINUTES) >= 5, (
        "expected sustained degraded runs under bare percentile capping"
    )


def test_ropus_t_degr_bounds_every_run(ensemble, benchmark):
    translator = QoSTranslator(PoolCommitments.of(theta=THETA))
    qos = case_study_qos(
        m_degr_percent=M_DEGR_PERCENT, t_degr_minutes=T_DEGR_MINUTES
    )

    def compute():
        return [translator.translate(trace, qos) for trace in ensemble]

    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    slot_minutes = ensemble[0].calendar.slot_minutes
    longest = np.array(
        [result.longest_degraded_run_slots * slot_minutes for result in results]
    )
    reductions = np.array([result.cap_reduction for result in results])

    print_series(
        "R-Opus with T_degr=30 min",
        [
            f"longest degraded run across apps: {longest.max():.0f} min",
            f"mean MaxCapReduction retained: {100 * reductions.mean():.1f}%",
        ],
    )

    # Every run bounded by T_degr — the guarantee percentile capping lacks.
    assert (longest <= T_DEGR_MINUTES + 1e-9).all()
    # And the capacity saving is not destroyed by the constraint.
    assert reductions.mean() > 0.05
