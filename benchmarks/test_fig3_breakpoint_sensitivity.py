"""Figure 3: sensitivity of breakpoint p and max allocation to theta.

The paper plots, for (U_low, U_high) = (0.5, 0.66):

* the breakpoint ``p`` (fraction of demand in CoS1), which decreases
  linearly in theta and reaches 0 at theta = U_low/U_high ~ 0.7576;
* the normalised maximum allocation ``D_new_max`` under a time-limited
  degradation constraint, which decreases as theta grows — the paper
  calls out that theta = 0.95 yields a max allocation about 20% below
  theta = 0.6.
"""

import numpy as np

from repro.core.partition import breakpoint_fraction
from repro.util.floats import is_zero

from conftest import U_HIGH, U_LOW, print_series

THETAS = np.round(np.arange(0.50, 1.001, 0.05), 2)


def normalized_max_allocation(theta: float) -> float:
    """D_new_max for a fixed D_min_degr, normalised (formula 10).

    Under a binding time-limit, D_new_max is proportional to
    ``1 / (p (1-theta) + theta)`` (formula 10 with D_min_degr fixed),
    which is the trend line Figure 3 plots.
    """
    p = breakpoint_fraction(U_LOW, U_HIGH, theta)
    return U_LOW / (U_HIGH * (p * (1.0 - theta) + theta))


def test_fig3_breakpoint_and_max_allocation(benchmark):
    def compute():
        return [
            (theta, breakpoint_fraction(U_LOW, U_HIGH, theta),
             normalized_max_allocation(theta))
            for theta in THETAS
        ]

    series = benchmark(compute)

    rows = ["theta  breakpoint p  normalized D_new_max"]
    for theta, p, cap in series:
        rows.append(f"{theta:5.2f}  {p:12.4f}  {cap:20.4f}")
    print_series("Figure 3: sensitivity of p and max allocation to theta", rows)

    points = {theta: (p, cap) for theta, p, cap in series}

    # p decreases monotonically and hits 0 at theta >= U_low/U_high.
    ps = [p for _, p, _ in series]
    assert all(a >= b - 1e-12 for a, b in zip(ps, ps[1:]))
    assert points[0.75][0] > 0.0
    assert is_zero(points[0.8][0])
    assert is_zero(points[0.95][0])

    # Max allocation decreases in theta; the paper's headline: theta=0.95
    # is about 20% below theta=0.6.
    caps = [cap for _, _, cap in series]
    assert all(a >= b - 1e-12 for a, b in zip(caps, caps[1:]))
    reduction = 1.0 - points[0.95][1] / points[0.6][1]
    assert 0.10 <= reduction <= 0.30, f"got {reduction:.1%}, paper ~20%"
