"""Table I: impact of M_degr, T_degr and theta on resource sharing.

The paper's six cases, each consolidating the 26 applications onto
16-way servers with a 60-minute CoS2 deadline:

====  ======  =====  ======  =======  ======  ======
case  M_degr  theta  T_degr  servers  C_requ  C_peak
====  ======  =====  ======  =======  ======  ======
1     0       0.60   none    8        123     218
2     3       0.60   30 min  7        106     188
3     3       0.60   none    7        104     166
4     0       0.95   none    8        118     218
5     3       0.95   30 min  7        103     167
6     3       0.95   none    7        104     166
====  ======  =====  ======  =======  ======  ======

The absolute numbers depend on the proprietary traces; the *shape*
checks below assert what transfers to the synthetic ensemble:

* required capacity is far below the sum of peak allocations (the paper
  reports 37-45% savings from sharing);
* M_degr = 3% cases need no more servers/capacity than their
  M_degr = 0 counterparts, and reduce C_peak by roughly a quarter
  (paper: 24%);
* with T_degr = 30 min the C_peak reduction survives nearly intact at
  theta = 0.95 (paper: 23%) but shrinks at theta = 0.6 (paper: 14%).
"""

import pytest

from repro.core.cos import PoolCommitments
from repro.core.framework import ROpus
from repro.core.qos import QoSPolicy, case_study_qos
from repro.metrics.capacity import capacity_case
from repro.metrics.report import render_capacity_table
from repro.placement.genetic import GeneticSearchConfig
from repro.resources.pool import ResourcePool
from repro.resources.server import homogeneous_servers

from conftest import M_DEGR_PERCENT, print_series

CASES = [
    ("1", 0.0, 0.60, None),
    ("2", M_DEGR_PERCENT, 0.60, 30.0),
    ("3", M_DEGR_PERCENT, 0.60, None),
    ("4", 0.0, 0.95, None),
    ("5", M_DEGR_PERCENT, 0.95, 30.0),
    ("6", M_DEGR_PERCENT, 0.95, None),
]

SEARCH = GeneticSearchConfig(
    seed=1, population_size=24, max_generations=120, stall_generations=20
)


def run_case(ensemble, m_degr, theta, t_degr):
    framework = ROpus(
        PoolCommitments.of(theta=theta, deadline_minutes=60),
        ResourcePool(homogeneous_servers(14, cpus=16)),
        search_config=SEARCH,
    )
    policy = QoSPolicy(
        normal=case_study_qos(m_degr_percent=m_degr, t_degr_minutes=t_degr)
    )
    plan = framework.plan(demands=ensemble, policies=policy, plan_failures=False)
    return plan.consolidation


@pytest.fixture(scope="module")
def table1(ensemble):
    return {
        label: (m, theta, t, run_case(ensemble, m, theta, t))
        for label, m, theta, t in CASES
    }


def test_table1_rows(table1, benchmark, ensemble):
    # Benchmark one representative consolidation (case 3).
    benchmark.pedantic(
        lambda: run_case(ensemble, M_DEGR_PERCENT, 0.6, None),
        rounds=1,
        iterations=1,
    )

    rows = [
        capacity_case(label, m, theta, t, result)
        for label, (m, theta, t, result) in table1.items()
    ]
    print_series(
        "Table I: impact of M_degr, T_degr and theta on resource sharing",
        render_capacity_table(rows).splitlines(),
    )

    for label, (m, theta, t, result) in table1.items():
        # Sharing savings in (or near) the paper's 37-45% band.
        savings = result.sharing_savings()
        assert 0.25 <= savings <= 0.60, (
            f"case {label}: savings {savings:.0%} outside plausible band"
        )
        # Every placement fits on the 14-server pool with room to spare.
        assert result.servers_used <= 12


def test_table1_m_degr_reduces_c_peak(table1, benchmark):
    """M_degr=3% cuts the sum of peak allocations by roughly a quarter
    (paper: 24% with no time limit, both thetas)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for strict_label, relaxed_label in [("1", "3"), ("4", "6")]:
        strict = table1[strict_label][3]
        relaxed = table1[relaxed_label][3]
        reduction = 1.0 - (
            relaxed.sum_peak_allocations / strict.sum_peak_allocations
        )
        assert 0.15 <= reduction <= 0.30, (
            f"C_peak reduction {reduction:.0%} for case {relaxed_label} "
            f"vs {strict_label}; paper ~24%"
        )


def test_table1_t_degr_theta_interaction(table1, benchmark):
    """With T_degr=30 min, theta=0.95 retains most of the C_peak
    reduction (paper: 23%) while theta=0.6 loses a chunk (paper: 14%)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def peak_reduction(strict_label, relaxed_label):
        strict = table1[strict_label][3]
        relaxed = table1[relaxed_label][3]
        return 1.0 - relaxed.sum_peak_allocations / strict.sum_peak_allocations

    reduction_60 = peak_reduction("1", "2")
    reduction_95 = peak_reduction("4", "5")
    assert reduction_95 > reduction_60, (
        f"theta=0.95 should retain more reduction under T_degr: "
        f"{reduction_95:.0%} vs {reduction_60:.0%}"
    )
    assert 0.08 <= reduction_60 <= 0.22  # paper: 14%
    assert 0.15 <= reduction_95 <= 0.30  # paper: 23%


def test_table1_relaxation_never_needs_more_servers(table1, benchmark):
    """Cases 2/3 use no more servers than case 1; 5/6 no more than 4."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for strict_label, relaxed_labels in [("1", ["2", "3"]), ("4", ["5", "6"])]:
        strict_servers = table1[strict_label][3].servers_used
        for relaxed_label in relaxed_labels:
            assert table1[relaxed_label][3].servers_used <= strict_servers


def test_table1_relaxation_reduces_required_capacity(table1, benchmark):
    """C_requ drops when QoS is relaxed (paper: ~14% both thetas)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for strict_label, relaxed_label in [("1", "3"), ("4", "6")]:
        strict = table1[strict_label][3]
        relaxed = table1[relaxed_label][3]
        assert relaxed.sum_required <= strict.sum_required * 1.02
