"""Wall-time benchmark for the failure-domain tier.

Runs the paper-scale case-study ensemble on a topology pool (12
servers over 4 racks and 2 zones) and measures each failure-tier
sweep on top of one shared normal plan:

* ``single`` — the paper's baseline per-server what-if sweep;
* ``rack`` / ``zone`` — whole-domain loss sweeps;
* ``rack:2`` — correlated 2-concurrent faults drawn per rack;
* ``degraded`` — every server surviving at half capacity;
* ``spare_curve`` — the spares-needed-vs-failure-scope search.

Two quality gates run alongside the timings: the rack sweep must
either absorb every whole-rack loss or the spare-sizing search must
find a finite spare count for it, and the spare curve must be
monotone non-increasing as the failure scope shrinks.

Measurements land in ``BENCH_failure_domains.json`` at the repo root::

    # genetic search (committed baseline):
    PYTHONPATH=src python benchmarks/perf/failure_domains_bench.py
    # first-fit smoke (CI):
    PYTHONPATH=src python benchmarks/perf/failure_domains_bench.py --quick
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.core.cos import PoolCommitments
from repro.core.qos import QoSPolicy, case_study_qos
from repro.core.translation import QoSTranslator
from repro.engine import ExecutionEngine
from repro.placement.consolidation import Consolidator
from repro.placement.failure import FailurePlanner
from repro.placement.genetic import GeneticSearchConfig
from repro.resources.pool import ResourcePool
from repro.resources.server import homogeneous_servers
from repro.workloads.ensemble import case_study_ensemble

SEED = 2006
THETA = 0.95
SERVERS = 12
RACKS = 4
ZONES = 2
MAX_SPARES = 3
REPO_ROOT = Path(__file__).resolve().parents[2]
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_failure_domains.json"


def _config() -> GeneticSearchConfig:
    return GeneticSearchConfig(
        seed=SEED,
        population_size=10,
        max_generations=8,
        stall_generations=4,
    )


def _report_entry(label: str, report, seconds: float) -> dict:
    return {
        "sweep": label,
        "seconds": round(seconds, 4),
        "cases": len(report.cases),
        "infeasible": len(report.infeasible_cases),
        "all_supported": report.all_supported,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use first-fit re-planning and a coarse calendar (CI smoke)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args()

    algorithm = "first_fit" if args.quick else "genetic"
    slot_minutes = 60 if args.quick else 30
    demands = case_study_ensemble(
        seed=SEED, weeks=1, slot_minutes=slot_minutes
    )
    policy = QoSPolicy(
        normal=case_study_qos(m_degr_percent=0),
        failure=case_study_qos(m_degr_percent=3, t_degr_minutes=30.0),
    )
    pool = ResourcePool(
        homogeneous_servers(SERVERS, cpus=16, racks=RACKS, zones=ZONES)
    )
    engine = ExecutionEngine.serial()
    translator = QoSTranslator(PoolCommitments.of(theta=THETA), engine=engine)
    pairs = [
        translator.translate(demand, policy.normal).pair
        for demand in demands
    ]
    start = time.perf_counter()
    normal = Consolidator(
        pool, translator.commitments.cos2, config=_config(), engine=engine
    ).consolidate(pairs, algorithm)
    normal_seconds = time.perf_counter() - start
    print(
        f"[normal] {len(demands)} workloads on {normal.servers_used}/"
        f"{SERVERS} servers ({RACKS} racks, {ZONES} zones) in "
        f"{normal_seconds:.2f}s",
        flush=True,
    )

    planner = FailurePlanner(translator, config=_config(), engine=engine)
    sweeps = []
    reports = {}
    for label, scope in [
        ("single", "server"),
        ("rack", "rack"),
        ("zone", "zone"),
        ("rack:2", "rack:2"),
    ]:
        start = time.perf_counter()
        report = planner.plan_scope(
            demands, policy, pool, normal, scope=scope,
            algorithm=algorithm, sample_seed=SEED,
        )
        seconds = time.perf_counter() - start
        reports[label] = report
        sweeps.append(_report_entry(label, report, seconds))
        print(
            f"[{label}] {len(report.cases)} cases, "
            f"{len(report.infeasible_cases)} infeasible, {seconds:.2f}s",
            flush=True,
        )

    start = time.perf_counter()
    degraded = planner.plan_degraded(
        demands, policy, pool, normal, factor=0.5, algorithm=algorithm
    )
    seconds = time.perf_counter() - start
    sweeps.append(_report_entry("degraded@0.5", degraded, seconds))
    print(
        f"[degraded@0.5] {len(degraded.cases)} cases, "
        f"{len(degraded.infeasible_cases)} infeasible, {seconds:.2f}s",
        flush=True,
    )

    start = time.perf_counter()
    curve = planner.spare_sizing_curve(
        demands, policy, pool, normal,
        max_spares=MAX_SPARES, algorithm=algorithm, sample_seed=SEED,
    )
    curve_seconds = time.perf_counter() - start
    spares = {point.scope: point.spares_needed for point in curve.points}
    print(f"[spare curve] {spares} in {curve_seconds:.2f}s", flush=True)

    rack_absorbed = reports["rack"].all_supported
    rack_spares = spares.get("rack")
    if not rack_absorbed and rack_spares is None:
        raise RuntimeError(
            "whole-rack loss is neither absorbed nor coverable within "
            f"{MAX_SPARES} spares"
        )
    if not curve.monotone_in_scope():
        raise RuntimeError(
            "spare-sizing curve is not monotone in the failure scope"
        )

    counters = engine.instrumentation.counters()
    report = {
        "benchmark": "failure-domain sweeps",
        "seed": SEED,
        "theta": THETA,
        "quick": args.quick,
        "algorithm": algorithm,
        "slot_minutes": slot_minutes,
        "workloads": len(demands),
        "servers": SERVERS,
        "racks": RACKS,
        "zones": ZONES,
        "servers_used": normal.servers_used,
        "normal_seconds": round(normal_seconds, 4),
        "sweeps": sweeps,
        "rack_loss_absorbed": rack_absorbed,
        "rack_loss_spares_needed": 0 if rack_absorbed else rack_spares,
        "spare_curve": curve.to_payload(),
        "spare_curve_seconds": round(curve_seconds, 4),
        "spare_curve_monotone": curve.monotone_in_scope(),
        "sweep_counters": {
            name: value
            for name, value in sorted(counters.items())
            if name.startswith("failure.")
        },
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
