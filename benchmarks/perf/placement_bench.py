"""Wall-time benchmark for the batched capacity-search kernels.

Runs the seeded consolidation + failure-sweep pipeline at two scales
and three arms:

* ``scalar`` — the pre-batching path (per-subset Python bisection, no
  sweep cache sharing): the baseline every speedup is measured against;
* ``batch`` — the simultaneous-bisection kernel plus failure-sweep
  scratch sharing, bit-identical plans;
* ``analytic`` — the batch kernel with the closed-form theta inversion,
  tolerance-equivalent plans.

Every arm replans the same pinned-seed ensemble, the driver checks the
arms against each other (batch must match scalar exactly, analytic
within the search tolerance), and the measurements land in
``BENCH_placement.json`` at the repo root::

    PYTHONPATH=src python benchmarks/perf/placement_bench.py           # both scales
    PYTHONPATH=src python benchmarks/perf/placement_bench.py --quick   # small only (CI)
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.core.cos import PoolCommitments
from repro.core.framework import ROpus
from repro.core.qos import QoSPolicy, case_study_qos
from repro.engine import ExecutionEngine
from repro.placement.genetic import GeneticSearchConfig
from repro.resources.pool import ResourcePool
from repro.resources.server import homogeneous_servers
from repro.workloads.ensemble import case_study_ensemble

SEED = 2006
TOLERANCE = 0.01
REPO_ROOT = Path(__file__).resolve().parents[2]
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_placement.json"

#: (scale name, ensemble shape, pool size, search budget). ``small``
#: is the CI smoke size; ``medium`` is the 26-application case-study
#: ensemble at the paper's 5-minute resolution over 4 weeks.
SCALES: dict[str, dict[str, int]] = {
    "small": {
        "weeks": 1,
        "slot_minutes": 60,
        "servers": 12,
        "population_size": 8,
        "max_generations": 6,
        "stall_generations": 3,
    },
    "medium": {
        "weeks": 4,
        "slot_minutes": 5,
        "servers": 12,
        "population_size": 10,
        "max_generations": 8,
        "stall_generations": 4,
    },
}

#: Arm name -> framework knobs. The scalar arm also disables the sweep
#: scratch so it is a faithful replay of the pre-kernel pipeline.
ARMS: dict[str, dict[str, object]] = {
    "scalar": {"kernel": "scalar", "share_sweep_cache": False},
    "batch": {"kernel": "batch", "share_sweep_cache": True},
    "analytic": {"kernel": "analytic", "share_sweep_cache": True},
}


def run_arm(demands, policy, scale: dict[str, int], knobs) -> dict:
    config = GeneticSearchConfig(
        seed=SEED,
        population_size=scale["population_size"],
        max_generations=scale["max_generations"],
        stall_generations=scale["stall_generations"],
    )
    framework = ROpus(
        PoolCommitments.of(theta=0.95),
        ResourcePool(homogeneous_servers(scale["servers"], cpus=16)),
        search_config=config,
        tolerance=TOLERANCE,
        engine=ExecutionEngine.serial(),
        **knobs,
    )
    start = time.perf_counter()
    plan = framework.plan(demands, policy, plan_failures=True)
    wall = time.perf_counter() - start
    return {
        "wall_seconds": round(wall, 4),
        "servers_used": plan.consolidation.servers_used,
        "sum_required": round(plan.consolidation.sum_required, 4),
        "spare_server_needed": plan.spare_server_needed,
        "counters": {
            key: value for key, value in sorted(plan.summary()["counters"].items())
        },
        "_plan": plan,
    }


def check_consistency(arms: dict[str, dict]) -> None:
    """Fail loudly when an arm's plan drifts from the scalar baseline."""
    baseline = arms["scalar"]["_plan"].consolidation
    for name, arm in arms.items():
        consolidation = arm["_plan"].consolidation
        if dict(consolidation.assignment) != dict(baseline.assignment):
            raise RuntimeError(f"{name} arm changed the placement")
        required = dict(consolidation.required_by_server)
        for server, value in dict(baseline.required_by_server).items():
            # batch is bit-identical; analytic may land anywhere in the
            # same tolerance interval.
            budget = 1e-9 if name != "analytic" else TOLERANCE + 1e-9
            if abs(required[server] - value) > budget:
                raise RuntimeError(
                    f"{name} arm: required capacity for {server} is "
                    f"{required[server]}, scalar says {value}"
                )


def run_scale(name: str, scale: dict[str, int]) -> dict:
    demands = case_study_ensemble(
        seed=SEED, weeks=scale["weeks"], slot_minutes=scale["slot_minutes"]
    )
    policy = QoSPolicy(
        normal=case_study_qos(m_degr_percent=0),
        failure=case_study_qos(m_degr_percent=3, t_degr_minutes=30),
    )
    arms = {
        arm: run_arm(demands, policy, scale, knobs)
        for arm, knobs in ARMS.items()
    }
    check_consistency(arms)
    baseline = arms["scalar"]["wall_seconds"]
    speedups = {
        arm: round(baseline / result["wall_seconds"], 2)
        for arm, result in arms.items()
        if arm != "scalar"
    }
    for arm in arms.values():
        del arm["_plan"]
    print(f"[{name}] scalar {baseline:.2f}s", flush=True)
    for arm, speedup in speedups.items():
        print(
            f"[{name}] {arm} {arms[arm]['wall_seconds']:.2f}s "
            f"({speedup:.2f}x)",
            flush=True,
        )
    return {
        "config": dict(scale),
        "workloads": len(demands),
        "arms": arms,
        "speedup_vs_scalar": speedups,
        "plans_consistent": True,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run only the small scale (CI smoke mode)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args()

    names = ["small"] if args.quick else list(SCALES)
    report = {
        "benchmark": "placement capacity-search kernels",
        "seed": SEED,
        "tolerance": TOLERANCE,
        "quick": args.quick,
        "scales": {name: run_scale(name, SCALES[name]) for name in names},
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
