"""Wall-time benchmark for the batched capacity-search kernels.

Runs the seeded consolidation + failure-sweep pipeline at three scales
over four arms:

* ``scalar`` — the pre-batching path (per-subset Python bisection, no
  sweep cache sharing): the baseline every speedup is measured against;
* ``batch`` — the simultaneous-bisection kernel plus failure-sweep
  scratch sharing, bit-identical plans;
* ``analytic`` — the batch kernel with the closed-form theta inversion,
  tolerance-equivalent plans;
* ``fused`` — the generation-scale float32 kernel with float64
  verification (:mod:`repro.placement.fused`), bit-identical plans.

Every arm replans the same pinned-seed ensemble and the driver checks
the arms against each other (batch and fused must match the baseline
exactly, analytic within the search tolerance). The ``large`` scale —
52 weeks at 5-minute slots over a 208-application ensemble — would take
hours on the scalar path, so it runs only the batch and fused arms and
reports ``speedup_vs_batch`` instead; plan equivalence there is checked
fused-against-batch.

Each scale also reports a ``generation_solve`` section: one
generation-scale batch of GA-shaped groups solved per kernel with cold
caches. That isolates the path the fused kernel targets — the
end-to-end arm walls include greedy seeding, cache bookkeeping and the
failure sweep, which are common to every kernel and bound the
end-to-end ratio (Amdahl), while the generation solve shows the kernel
speedup itself. The measurements land in
``BENCH_placement.json`` at the repo root::

    PYTHONPATH=src python benchmarks/perf/placement_bench.py           # all scales
    PYTHONPATH=src python benchmarks/perf/placement_bench.py --quick   # small only (CI)
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.core.cos import PoolCommitments
from repro.core.framework import ROpus
from repro.core.qos import QoSPolicy, case_study_qos
from repro.core.translation import QoSTranslator
from repro.engine import ExecutionEngine
from repro.placement.evaluation import PlacementEvaluator
from repro.placement.genetic import GeneticSearchConfig
from repro.resources.pool import ResourcePool
from repro.resources.server import homogeneous_servers
from repro.util.rng import derive_rng
from repro.workloads.ensemble import scaled_ensemble

SEED = 2006
TOLERANCE = 0.01
REPO_ROOT = Path(__file__).resolve().parents[2]
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_placement.json"

#: Scale name -> ensemble shape, pool size, search budget and arm list.
#: ``small`` is the CI smoke size; ``medium`` is the 26-application
#: case-study ensemble at the paper's 5-minute resolution over 4 weeks
#: (``scaled_ensemble(26)`` reproduces it exactly); ``large`` stresses a
#: year of 5-minute traces across 208 applications and skips the
#: failure sweep plus the scalar/analytic arms to stay tractable.
SCALES: dict[str, dict] = {
    "small": {
        "n_apps": 26,
        "weeks": 1,
        "slot_minutes": 60,
        "servers": 12,
        "population_size": 8,
        "max_generations": 6,
        "stall_generations": 3,
        "generation_rows": 60,
    },
    "medium": {
        "n_apps": 26,
        "weeks": 4,
        "slot_minutes": 5,
        "servers": 12,
        "population_size": 10,
        "max_generations": 8,
        "stall_generations": 4,
        "generation_rows": 150,
    },
    "large": {
        "n_apps": 208,
        "weeks": 52,
        "slot_minutes": 5,
        "servers": 96,
        "population_size": 4,
        "max_generations": 3,
        "stall_generations": 2,
        "plan_failures": False,
        "arms": ["batch", "fused"],
        "generation_rows": 100,
        # Single shot: each solve is seconds long, noise-free enough.
        "generation_repeats": 1,
    },
}

#: Arm name -> framework knobs. The scalar arm also disables the sweep
#: scratch so it is a faithful replay of the pre-kernel pipeline.
ARMS: dict[str, dict[str, object]] = {
    "scalar": {"kernel": "scalar", "share_sweep_cache": False},
    "batch": {"kernel": "batch", "share_sweep_cache": True},
    "analytic": {"kernel": "analytic", "share_sweep_cache": True},
    "fused": {"kernel": "fused", "share_sweep_cache": True},
}


def run_arm(demands, policy, scale: dict, knobs) -> dict:
    config = GeneticSearchConfig(
        seed=SEED,
        population_size=scale["population_size"],
        max_generations=scale["max_generations"],
        stall_generations=scale["stall_generations"],
    )
    framework = ROpus(
        PoolCommitments.of(theta=0.95),
        ResourcePool(homogeneous_servers(scale["servers"], cpus=16)),
        search_config=config,
        tolerance=TOLERANCE,
        engine=ExecutionEngine.serial(),
        **knobs,
    )
    start = time.perf_counter()
    plan = framework.plan(
        demands, policy, plan_failures=scale.get("plan_failures", True)
    )
    wall = time.perf_counter() - start
    return {
        "wall_seconds": round(wall, 4),
        "servers_used": plan.consolidation.servers_used,
        "sum_required": round(plan.consolidation.sum_required, 4),
        "spare_server_needed": plan.spare_server_needed,
        "counters": {
            key: value for key, value in sorted(plan.summary()["counters"].items())
        },
        "_plan": plan,
    }


def check_consistency(arms: dict[str, dict], baseline_arm: str) -> None:
    """Fail loudly when an arm's plan drifts from the baseline arm."""
    baseline = arms[baseline_arm]["_plan"].consolidation
    for name, arm in arms.items():
        consolidation = arm["_plan"].consolidation
        if dict(consolidation.assignment) != dict(baseline.assignment):
            raise RuntimeError(f"{name} arm changed the placement")
        required = dict(consolidation.required_by_server)
        for server, value in dict(baseline.required_by_server).items():
            # batch and fused are bit-identical; analytic may land
            # anywhere in the same tolerance interval.
            budget = 1e-9 if name != "analytic" else TOLERANCE + 1e-9
            if abs(required[server] - value) > budget:
                raise RuntimeError(
                    f"{name} arm: required capacity for {server} is "
                    f"{required[server]}, {baseline_arm} says {value}"
                )


def generation_groups(
    n_apps: int, servers: int, rows: int, seed: int
) -> list[tuple[int, ...]]:
    """Distinct server groups shaped like GA generations.

    Random full assignments of all workloads to the pool, exactly as
    the genetic search proposes them, yield the candidate groups; the
    first ``rows`` distinct ones form the batch.
    """
    rng = derive_rng(seed)
    groups: set[tuple[int, ...]] = set()
    while len(groups) < rows:
        assignment = rng.integers(0, servers, size=n_apps)
        for server in range(servers):
            members = tuple(np.nonzero(assignment == server)[0].tolist())
            if members:
                groups.add(members)
    return sorted(groups)[:rows]


def run_generation_solve(demands, policy, scale: dict, arm_names) -> dict:
    """Solve one generation-scale batch of groups per kernel.

    This measures the exact path the fused kernel targets — every
    cache-missing group of a GA generation solved in one call — without
    the pipeline's greedy seeding and bookkeeping around it, on the
    same traces and commitment the end-to-end arms use. Cold caches for
    every kernel; results must agree bit-for-bit (``scalar`` vs
    ``batch`` vs ``fused``).
    """
    commits = PoolCommitments.of(theta=0.95)
    translator = QoSTranslator(commits)
    pairs = [
        translator.translate(demand, policy.normal).pair
        for demand in demands
    ]
    groups = generation_groups(
        len(demands), scale["servers"], scale["generation_rows"], SEED
    )
    items = [(16.0, group) for group in groups]
    kernels = [ARMS[arm]["kernel"] for arm in arm_names]
    if "analytic" in kernels:
        # Tolerance-equivalent, not bit-identical; the generation-solve
        # section only compares exact kernels.
        kernels.remove("analytic")
    repeats = int(scale.get("generation_repeats", 3))
    timings: dict[str, float] = {}
    solutions: dict[str, list] = {}
    for kernel in kernels:
        # Best-of-N with a fresh (cold) evaluator per repeat: the solve
        # is a few hundred milliseconds, so single shots are dominated
        # by scheduler noise.
        best = float("inf")
        for _ in range(repeats):
            evaluator = PlacementEvaluator(
                pairs, commits.cos2, tolerance=TOLERANCE, kernel=str(kernel)
            )
            start = time.perf_counter()
            solutions[str(kernel)] = evaluator.evaluate_groups(items)
            best = min(best, time.perf_counter() - start)
        timings[str(kernel)] = best
    reference = solutions[kernels[0]]
    for kernel, evaluations in solutions.items():
        for ours, theirs in zip(evaluations, reference):
            if ours.fits != theirs.fits or ours.required != theirs.required:
                raise RuntimeError(
                    f"generation solve: {kernel} kernel disagrees with "
                    f"{kernels[0]}"
                )
    report: dict[str, object] = {
        "rows": len(groups),
        "fitting_rows": sum(e.fits for e in reference),
        "plans_match": True,
    }
    for kernel, seconds in timings.items():
        report[f"{kernel}_ms"] = round(seconds * 1e3, 1)
    for kernel, seconds in timings.items():
        if kernel != "fused" and "fused" in timings:
            report[f"speedup_fused_vs_{kernel}"] = round(
                seconds / timings["fused"], 2
            )
    return report


def run_scale(name: str, scale: dict) -> dict:
    demands = scaled_ensemble(
        scale["n_apps"],
        seed=SEED,
        weeks=scale["weeks"],
        slot_minutes=scale["slot_minutes"],
    )
    policy = QoSPolicy(
        normal=case_study_qos(m_degr_percent=0),
        failure=case_study_qos(m_degr_percent=3, t_degr_minutes=30),
    )
    arm_names = scale.get("arms", list(ARMS))
    arms = {}
    for arm in arm_names:
        arms[arm] = run_arm(demands, policy, scale, ARMS[arm])
        print(
            f"[{name}] {arm} {arms[arm]['wall_seconds']:.2f}s",
            flush=True,
        )
    baseline_arm = "scalar" if "scalar" in arms else "batch"
    check_consistency(arms, baseline_arm)
    generation = run_generation_solve(demands, policy, scale, arm_names)
    print(
        f"[{name}] generation solve: "
        + " ".join(
            f"{key}={value}"
            for key, value in generation.items()
            if key.endswith("_ms") or key.startswith("speedup")
        ),
        flush=True,
    )
    baseline = arms[baseline_arm]["wall_seconds"]
    speedups = {
        arm: round(baseline / result["wall_seconds"], 2)
        for arm, result in arms.items()
        if arm != baseline_arm
    }
    for arm in arms.values():
        del arm["_plan"]
    for arm, speedup in speedups.items():
        print(
            f"[{name}] {arm} speedup vs {baseline_arm}: {speedup:.2f}x",
            flush=True,
        )
    return {
        "config": {
            key: value for key, value in scale.items() if key != "arms"
        },
        "workloads": len(demands),
        "arms": arms,
        f"speedup_vs_{baseline_arm}": speedups,
        "generation_solve": generation,
        "plans_consistent": True,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run only the small scale (CI smoke mode)",
    )
    parser.add_argument(
        "--scales",
        nargs="*",
        choices=list(SCALES),
        default=None,
        help="run only the named scales (default: all, or small with "
             "--quick)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args()

    if args.scales:
        names = list(args.scales)
    elif args.quick:
        names = ["small"]
    else:
        names = list(SCALES)
    report = {
        "benchmark": "placement capacity-search kernels",
        "seed": SEED,
        "tolerance": TOLERANCE,
        "quick": args.quick,
        "scales": {name: run_scale(name, SCALES[name]) for name in names},
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
