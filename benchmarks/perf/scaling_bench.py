"""Wall-time benchmark for the hierarchical (sharded) placement tier.

Two arms, both against the pinned-seed scaled ensemble:

* ``paper_scale`` — the 26-application case study on the paper's
  12-server pool. Checks the refactor's two quality contracts:
  ``sharding="off"`` hashes identically to a plan composed by hand
  from the pre-refactor pieces (translate + one monolithic
  consolidation), and the sharded plan's required capacity stays
  within 2% of the unsharded one.
* ``scaling_ladder`` — replicated ensembles from 65 to 520 workloads
  on proportionally sized pools, planned both unsharded and sharded.
  Wall-clock is fitted on a log-log scale; the sharded growth
  exponent must stay below 2 (sub-quadratic) and the ≥500-workload
  rung must complete end-to-end.

Measurements land in ``BENCH_scaling.json`` at the repo root::

    PYTHONPATH=src python benchmarks/perf/scaling_bench.py           # full ladder
    PYTHONPATH=src python benchmarks/perf/scaling_bench.py --quick   # small rungs (CI)
"""

from __future__ import annotations

import argparse
import json
import math
import time
from pathlib import Path

from repro.core.cos import PoolCommitments
from repro.core.framework import CapacityPlan, ROpus
from repro.core.qos import QoSPolicy, case_study_qos
from repro.placement.consolidation import Consolidator
from repro.placement.genetic import GeneticSearchConfig
from repro.resources.pool import ResourcePool
from repro.resources.server import homogeneous_servers
from repro.workloads.ensemble import case_study_ensemble, scaled_ensemble

SEED = 2006
TOLERANCE = 0.01
THETA = 0.95
REPO_ROOT = Path(__file__).resolve().parents[2]
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_scaling.json"

#: Ladder rungs: (workloads, servers). Two servers per workload keeps
#: pool utilisation near the case study's (~75-80%) at every rung.
LADDER: list[tuple[int, int]] = [(65, 30), (130, 60), (260, 120), (520, 240)]
QUICK_LADDER: list[tuple[int, int]] = [(65, 30), (130, 60)]

#: Paper-scale quality bar: sharded required capacity may exceed the
#: monolithic plan's by at most this factor.
QUALITY_BAR = 1.02


def _config() -> GeneticSearchConfig:
    return GeneticSearchConfig(
        seed=SEED,
        population_size=10,
        max_generations=8,
        stall_generations=4,
    )


def _framework(pool_size: int, **knobs) -> ROpus:
    return ROpus(
        PoolCommitments.of(theta=THETA),
        ResourcePool(homogeneous_servers(pool_size, cpus=16)),
        search_config=_config(),
        tolerance=TOLERANCE,
        **knobs,
    )


def _policy() -> QoSPolicy:
    return QoSPolicy(normal=case_study_qos(m_degr_percent=0))


def _hand_composed_reference(demands, policy) -> CapacityPlan:
    """The pre-refactor pipeline, built from the original pieces."""
    framework = _framework(12)
    translations = framework.translate(demands, policy)
    pairs = [result.pair for result in translations.values()]
    consolidation = Consolidator(
        framework.pool,
        framework.commitments.cos2,
        config=_config(),
        tolerance=TOLERANCE,
        engine=framework.engine,
    ).consolidate(pairs, algorithm="genetic")
    return CapacityPlan(
        translations=translations,
        consolidation=consolidation,
        failure_report=None,
    )


def run_paper_scale(quick: bool) -> dict:
    """Case-study ensemble: off-path parity and sharded quality."""
    slot_minutes = 60 if quick else 30
    demands = case_study_ensemble(seed=SEED, weeks=1, slot_minutes=slot_minutes)
    policy = _policy()

    start = time.perf_counter()
    off = _framework(12, sharding="off").plan(
        demands, policy, plan_failures=False
    )
    off_seconds = time.perf_counter() - start

    reference = _hand_composed_reference(demands, policy)

    start = time.perf_counter()
    sharded = _framework(12, sharding="auto", cluster_seed=SEED).plan(
        demands, policy, plan_failures=False
    )
    sharded_seconds = time.perf_counter() - start

    quality_ratio = (
        sharded.consolidation.sum_required / off.consolidation.sum_required
    )
    result = {
        "workloads": len(demands),
        "servers": 12,
        "slot_minutes": slot_minutes,
        "off_seconds": round(off_seconds, 4),
        "sharded_seconds": round(sharded_seconds, 4),
        "off_sum_required": round(off.consolidation.sum_required, 4),
        "sharded_sum_required": round(sharded.consolidation.sum_required, 4),
        "quality_ratio": round(quality_ratio, 6),
        "quality_bar": QUALITY_BAR,
        "off_hash_matches_pre_refactor_pipeline": (
            off.plan_hash() == reference.plan_hash()
        ),
        "sharding": {
            key: value
            for key, value in sharded.sharding.items()
            if key != "shard_seconds"
        },
    }
    if not result["off_hash_matches_pre_refactor_pipeline"]:
        raise RuntimeError(
            "sharding='off' no longer reproduces the pre-refactor plan"
        )
    if quality_ratio > QUALITY_BAR:
        raise RuntimeError(
            f"sharded plan is {quality_ratio:.4f}x the monolithic cost, "
            f"bar is {QUALITY_BAR}x"
        )
    print(
        f"[paper] off {off_seconds:.2f}s, sharded {sharded_seconds:.2f}s, "
        f"quality {quality_ratio:.4f}x, hash parity ok",
        flush=True,
    )
    return result


def _fit_exponent(rungs: list[dict], key: str) -> float:
    """Least-squares slope of log(seconds) against log(workloads)."""
    xs = [math.log(rung["workloads"]) for rung in rungs]
    ys = [math.log(rung[key]) for rung in rungs]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    den = sum((x - mean_x) ** 2 for x in xs)
    return num / den


def run_scaling_ladder(quick: bool) -> dict:
    """Replicated ensembles, unsharded vs sharded, fitted growth."""
    ladder = QUICK_LADDER if quick else LADDER
    policy = _policy()
    rungs: list[dict] = []
    for workloads, servers in ladder:
        demands = scaled_ensemble(
            workloads, seed=SEED, weeks=1, slot_minutes=60
        )

        start = time.perf_counter()
        off = _framework(servers, sharding="off").plan(
            demands, policy, plan_failures=False
        )
        off_seconds = time.perf_counter() - start

        start = time.perf_counter()
        sharded = _framework(
            servers, sharding="auto", cluster_seed=SEED
        ).plan(demands, policy, plan_failures=False)
        sharded_seconds = time.perf_counter() - start

        placed = sum(
            len(names) for names in sharded.consolidation.assignment.values()
        )
        if placed != workloads:
            raise RuntimeError(
                f"sharded rung {workloads} placed {placed} workloads"
            )
        rung = {
            "workloads": workloads,
            "servers": servers,
            "off_seconds": round(off_seconds, 4),
            "sharded_seconds": round(sharded_seconds, 4),
            "off_sum_required": round(off.consolidation.sum_required, 4),
            "sharded_sum_required": round(
                sharded.consolidation.sum_required, 4
            ),
            "quality_ratio": round(
                sharded.consolidation.sum_required
                / off.consolidation.sum_required,
                4,
            ),
            "shards": sharded.sharding["shards"],
            "largest_shard": max(sharded.sharding["shard_sizes"]),
            "migrations": sharded.sharding["migrations"],
        }
        rungs.append(rung)
        print(
            f"[ladder] n={workloads} off {off_seconds:.2f}s, sharded "
            f"{sharded_seconds:.2f}s ({rung['shards']} shards, largest "
            f"{rung['largest_shard']})",
            flush=True,
        )

    sharded_exponent = _fit_exponent(rungs, "sharded_seconds")
    off_exponent = _fit_exponent(rungs, "off_seconds")
    result = {
        "rungs": rungs,
        "sharded_growth_exponent": round(sharded_exponent, 3),
        "off_growth_exponent": round(off_exponent, 3),
        "sharded_subquadratic": sharded_exponent < 2.0,
        "largest_rung_completed": rungs[-1]["workloads"],
    }
    if not result["sharded_subquadratic"]:
        raise RuntimeError(
            f"sharded growth exponent {sharded_exponent:.2f} is not "
            "sub-quadratic"
        )
    print(
        f"[ladder] growth exponents: sharded {sharded_exponent:.2f}, "
        f"unsharded {off_exponent:.2f}",
        flush=True,
    )
    return result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run the small rungs only (CI smoke mode)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args()

    report = {
        "benchmark": "hierarchical placement scaling",
        "seed": SEED,
        "theta": THETA,
        "tolerance": TOLERANCE,
        "quick": args.quick,
        "paper_scale": run_paper_scale(args.quick),
        "scaling_ladder": run_scaling_ladder(args.quick),
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
